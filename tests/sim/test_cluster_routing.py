"""Focused tests for cluster-sim internals: routing, hotspots, knobs."""

import pytest

from repro.sim.cluster_sim import ClusterSim


class TestRouting:
    def test_contiguous_range_partitioning(self):
        sim = ClusterSim(num_servers=4, keyspace=400, measure=0.1)
        # rows 0-99 -> server 0, 100-199 -> server 1, etc.
        assert sim.server_for(0).server_id == 0
        assert sim.server_for(99).server_id == 0
        assert sim.server_for(100).server_id == 1
        assert sim.server_for(399).server_id == 3

    def test_last_row_clamped(self):
        sim = ClusterSim(num_servers=3, keyspace=10, measure=0.1)
        assert sim.server_for(9).server_id == 2

    def test_every_server_reachable(self):
        sim = ClusterSim(num_servers=25, keyspace=20_000_000, measure=0.1)
        owners = {sim.server_for(r).server_id for r in range(0, 20_000_000, 500_000)}
        assert owners == set(range(25))


class TestHotspotMechanics:
    def test_ordered_latest_concentrates_load(self):
        from repro.workload.distributions import LatestDistribution

        sim = ClusterSim(
            distribution="zipfianLatest",
            num_clients=20,
            measure=2.0,
            warmup=0.5,
            seed=3,
        )
        keys = sim.workload._keys
        assert isinstance(keys, LatestDistribution)
        keys.layout = "ordered"
        result = sim.run()
        assert result.server_utilization_max > 0.9
        assert result.server_utilization_mean < 0.5

    def test_uniform_balances_load(self):
        sim = ClusterSim(
            distribution="uniform",
            num_clients=100,
            measure=2.0,
            warmup=0.5,
            seed=3,
        )
        result = sim.run()
        assert (
            result.server_utilization_max
            < 1.4 * result.server_utilization_mean + 0.05
        )


class TestKnobs:
    def test_io_concurrency_raises_saturation(self):
        lo = ClusterSim(
            num_clients=320, io_concurrency=2, measure=2.0, warmup=0.5, seed=5
        ).run()
        hi = ClusterSim(
            num_clients=320, io_concurrency=10, measure=2.0, warmup=0.5, seed=5
        ).run()
        assert hi.throughput_tps > 1.5 * lo.throughput_tps

    def test_cache_size_raises_zipfian_hit_rate(self):
        small = ClusterSim(
            distribution="zipfian", num_clients=40, cache_blocks=100,
            measure=2.0, warmup=0.5, seed=6,
        ).run()
        big = ClusterSim(
            distribution="zipfian", num_clients=40, cache_blocks=5000,
            measure=2.0, warmup=0.5, seed=6,
        ).run()
        assert big.cache_hit_rate > small.cache_hit_rate

    def test_oracle_stats_accessible(self):
        sim = ClusterSim(num_clients=10, measure=1.0, warmup=0.2, keyspace=10_000)
        result = sim.run()
        assert sim.oracle.stats.commits >= result.commits
