"""Tests for the reporting helpers and ASCII charts."""

import pytest

from repro.bench.plots import AsciiChart, abort_rate_chart, latency_throughput_chart
from repro.bench.reporting import (
    PaperAnchor,
    format_table,
    knee_index,
    monotonic_increasing,
    saturates,
    within_factor,
)


class TestFormatTable:
    def test_columns_aligned(self):
        table = format_table(["a", "bb"], [(1, 2), (333, 4)])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        assert format_table(["x"], [(1,)], title="T").startswith("T\n")

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table


class TestShapePredicates:
    def test_saturates_flat_tail(self):
        assert saturates([10, 100, 200, 210])

    def test_no_saturation_while_growing(self):
        assert not saturates([10, 100, 200, 400])

    def test_saturates_needs_points(self):
        assert not saturates([10, 20])

    def test_knee_index(self):
        assert knee_index([100, 200, 220, 225]) == 2
        assert knee_index([1, 2, 4, 8]) == 3  # no knee -> last index

    def test_monotonic_with_slack(self):
        assert monotonic_increasing([1, 2, 1.95, 3], slack=0.05)
        assert not monotonic_increasing([1, 2, 1.0], slack=0.05)

    def test_within_factor(self):
        assert within_factor(100, 150, 1.6)
        assert not within_factor(100, 300, 1.5)
        assert not within_factor(0, 100, 2)


class TestPaperAnchor:
    def test_row_contains_ratio(self):
        anchor = PaperAnchor("throughput", 100.0, 150.0, "TPS")
        assert "x1.50" in anchor.as_row()


class TestAsciiChart:
    def test_render_contains_all_glyphs(self):
        chart = AsciiChart(title="t", xlabel="x", ylabel="y")
        chart.add_series("a", [(0, 0), (10, 10)])
        chart.add_series("b", [(5, 2)])
        out = chart.render()
        assert "*" in out and "o" in out
        assert "* a" in out and "o b" in out

    def test_title_and_axes(self):
        chart = AsciiChart(title="My Figure", xlabel="TPS", ylabel="ms")
        chart.add_series("s", [(1, 1), (100, 50)])
        out = chart.render()
        assert out.startswith("My Figure")
        assert "TPS" in out
        assert "ms" in out

    def test_degenerate_single_point(self):
        chart = AsciiChart()
        chart.add_series("s", [(5, 5)])
        assert chart.render()  # must not divide by zero

    def test_empty_series_rejected(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("s", [])

    def test_render_without_series_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().render()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart(width=4, height=2)

    def test_convenience_wrappers(self):
        data = {"WSI": [(100, 10), (200, 20)], "SI": [(100, 9), (220, 18)]}
        assert "Throughput in TPS" in latency_throughput_chart("t", data)
        assert "ab%" in abort_rate_chart("t", data)


class TestCLI:
    def test_demo_command(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "write skew" in out and "serializable" in out

    def test_classify_command(self, capsys):
        from repro.__main__ import main

        assert main(["classify", "r1[x]", "w2[x]", "c2", "c1"]) == 0
        out = capsys.readouterr().out
        assert "serializable:  True" in out

    def test_micro_command(self, capsys):
        from repro.__main__ import main

        assert main(["micro"]) == 0
        assert "start timestamp" in capsys.readouterr().out
