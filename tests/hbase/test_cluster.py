"""Unit tests for the HBase-like cluster and region servers."""

import pytest

from repro.core import TransactionManager, make_oracle
from repro.hbase.cluster import HBaseCluster
from repro.hbase.region_server import BlockCache, RegionServer


class TestRouting:
    def test_single_region_goes_to_server_zero(self):
        cluster = HBaseCluster(num_servers=4)
        assert cluster.server_for(123).server_id == 0

    def test_presplit_spreads_rows(self):
        cluster = HBaseCluster.for_integer_keyspace(
            num_rows=1000, num_servers=4, regions_per_server=2
        )
        owners = {cluster.server_for(row).server_id for row in range(0, 1000, 50)}
        assert len(owners) == 4  # all servers participate

    def test_put_get_roundtrip_through_routing(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=1000, num_servers=3)
        cluster.put(577, 1, "x")
        versions = list(cluster.get_versions(577))
        assert versions[0].value == "x"
        # the data lives only on the owning server
        owner = cluster.server_for(577)
        others = [s for s in cluster.servers if s is not owner]
        assert 577 in owner.store
        assert all(577 not in s.store for s in others)

    def test_delete_version_routes(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=100, num_servers=2)
        cluster.put(42, 1, "x")
        assert cluster.delete_version(42, 1)
        assert not cluster.delete_version(42, 1)


class TestMetrics:
    def test_request_accounting(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=100, num_servers=2)
        cluster.put(1, 1, "a")
        list(cluster.get_versions(1))
        assert cluster.total_puts() == 1
        assert cluster.total_gets() == 1

    def test_load_imbalance_uniform(self):
        cluster = HBaseCluster.for_integer_keyspace(
            num_rows=10_000, num_servers=4, regions_per_server=4
        )
        for row in range(0, 10_000, 10):
            cluster.put(row, 1, row)
        assert cluster.load_imbalance() < 1.5

    def test_load_imbalance_hotspot(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=10_000, num_servers=4)
        for _ in range(100):
            cluster.put(9_999, 1, "hot")  # all traffic on the last region
        assert cluster.load_imbalance() > 2.0

    def test_bulk_load(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=100, num_servers=2)
        cluster.load([(i, 1, i) for i in range(100)])
        assert cluster.total_puts() == 100

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            HBaseCluster(num_servers=0)


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(capacity_blocks=10)
        assert not cache.touch("row")
        assert cache.touch("row")
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = BlockCache(capacity_blocks=2, rows_per_block=1)
        cache.touch("a")
        cache.touch("b")
        cache.touch("c")  # evicts a
        assert not cache.touch("a")

    def test_zero_capacity_never_hits(self):
        cache = BlockCache(capacity_blocks=0)
        cache.touch("x")
        assert not cache.touch("x")
        assert cache.hit_rate == 0.0

    def test_warm_inserts_without_stats(self):
        cache = BlockCache(capacity_blocks=4)
        cache.warm("row")
        assert cache.hits == 0 and cache.misses == 0
        assert cache.touch("row")  # now a hit

    def test_block_sharing(self):
        # integer keys share blocks at rows_per_block granularity
        cache = BlockCache(capacity_blocks=4, rows_per_block=64)
        assert not cache.touch(0)
        assert cache.touch(1)  # same 64-row block


class TestTransactionsOverCluster:
    """The cluster satisfies StorageBackend: run real transactions on it."""

    def test_cross_region_transaction(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=1000, num_servers=4)
        manager = TransactionManager(make_oracle("wsi"), cluster)
        txn = manager.begin()
        for row in (10, 300, 600, 900):  # spans several regions
            txn.write(row, row * 2)
        txn.commit()
        reader = manager.begin()
        assert [reader.read(r) for r in (10, 300, 600, 900)] == [20, 600, 1200, 1800]

    def test_conflict_detection_spans_servers(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=1000, num_servers=4)
        manager = TransactionManager(make_oracle("wsi"), cluster)
        t1, t2 = manager.begin(), manager.begin()
        t1.write(900, "a")
        t2.read(900)
        t2.write(10, "b")
        t1.commit()
        from repro.core.errors import ConflictAbort

        with pytest.raises(ConflictAbort):
            t2.commit()
