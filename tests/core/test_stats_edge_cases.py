"""Pin the divide-by-zero / empty-workload behaviour of every ratio stat.

Ratio accessors must return 0.0 — never raise — on a fresh component or
an empty workload; dashboards and sweep harnesses call them
unconditionally before any traffic has flowed.
"""

from repro.bench.harness import HarnessResult
from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest, OracleStats, make_oracle
from repro.server import FrontendStats, OracleFrontend
from repro.sim.engine import Engine, Resource
from repro.wal.bookkeeper import BookKeeperWAL


class TestOracleStatsEdgeCases:
    def test_abort_rate_zero_on_empty(self):
        assert OracleStats().abort_rate == 0.0
        assert OracleStats().total_requests == 0

    def test_abort_rate_zero_on_fresh_oracle(self):
        for level in ("si", "wsi"):
            assert make_oracle(level).stats.abort_rate == 0.0

    def test_abort_rate_zero_after_begin_only(self):
        # begins alone are not commit requests: still an empty workload
        oracle = make_oracle("wsi")
        oracle.begin()
        assert oracle.stats.abort_rate == 0.0

    def test_abort_rate_counts_read_only_commits(self):
        oracle = make_oracle("wsi")
        oracle.commit(CommitRequest(oracle.begin()))
        assert oracle.stats.abort_rate == 0.0
        assert oracle.stats.total_requests == 1


class TestCrossPartitionFractionEdgeCases:
    def test_zero_on_fresh_partitioned_oracle(self):
        assert PartitionedOracle().cross_partition_fraction() == 0.0

    def test_zero_when_workload_only_aborts(self):
        # aborts never count as routed commits: the denominator stays 0
        oracle = PartitionedOracle(num_partitions=2)
        oracle.abort(oracle.begin())
        assert oracle.cross_partition_fraction() == 0.0

    def test_zero_when_single_partition_only(self):
        oracle = PartitionedOracle(num_partitions=2)
        row = 0  # any single row touches exactly one partition
        oracle.commit(CommitRequest(oracle.begin(), write_set=frozenset([row])))
        assert oracle.cross_partition_fraction() == 0.0


class TestOtherRatioStats:
    def test_harness_result_abort_rate_empty(self):
        assert HarnessResult().abort_rate == 0.0

    def test_frontend_avg_batch_size_empty(self):
        assert FrontendStats().avg_batch_size() == 0.0
        frontend = OracleFrontend(make_oracle("wsi"))
        assert frontend.stats.avg_batch_size() == 0.0

    def test_wal_batching_factor_empty(self):
        assert BookKeeperWAL().batching_factor() == 0.0

    def test_resource_utilization_at_time_zero(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        assert resource.utilization() == 0.0
        assert resource.utilization(elapsed=0.0) == 0.0
