"""Result tables and shape checks shared by the benchmark suite.

Each figure-reproducing benchmark prints a table of its measured series
next to the paper's reported anchors, then asserts the *shape* criteria
recorded in DESIGN.md (who wins, where the knee falls, how curves order).
The helpers here keep that uniform across benchmarks/.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PaperAnchor:
    """A number the paper reports, for side-by-side display."""

    description: str
    paper_value: float
    measured_value: float
    unit: str = ""

    def as_row(self) -> str:
        ratio = (
            self.measured_value / self.paper_value if self.paper_value else float("nan")
        )
        return (
            f"{self.description:<52} paper={self.paper_value:>10.2f}{self.unit:<4} "
            f"measured={self.measured_value:>10.2f}{self.unit:<4} (x{ratio:.2f})"
        )


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Plain-text table with column auto-sizing."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# shape assertions
# ----------------------------------------------------------------------
def saturates(throughputs: Sequence[float], tail_gain_limit: float = 0.35) -> bool:
    """True if the curve flattens: the last step gains less than
    ``tail_gain_limit`` relative throughput despite more load."""
    if len(throughputs) < 3:
        return False
    prev, last = throughputs[-2], throughputs[-1]
    if prev <= 0:
        return False
    return (last - prev) / prev < tail_gain_limit


def knee_index(throughputs: Sequence[float], gain_threshold: float = 0.25) -> int:
    """Index of the first point where marginal throughput gain drops
    below ``gain_threshold`` (the saturation knee)."""
    for i in range(1, len(throughputs)):
        prev, cur = throughputs[i - 1], throughputs[i]
        if prev > 0 and (cur - prev) / prev < gain_threshold:
            return i
    return len(throughputs) - 1


def monotonic_increasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True if values never drop by more than ``slack`` relative."""
    for a, b in zip(values, values[1:]):
        if a > 0 and (a - b) / a > slack:
            return False
    return True


def within_factor(measured: float, paper: float, factor: float) -> bool:
    """True if measured is within [paper/factor, paper*factor]."""
    if paper <= 0 or measured <= 0:
        return False
    return paper / factor <= measured <= paper * factor
