"""Property tests for the Percolator baseline: it implements SI.

DESIGN.md's Percolator-SI invariant: the lock-based and lock-free
implementations enforce the *same isolation level* — their committed
histories contain no write-write conflicts between concurrent
transactions, no lost updates, and no ANSI anomalies; write skew remains
possible (it is SI, after all).
"""

from __future__ import annotations

import random
from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.conflicts import TxnFootprint, ww_conflict
from repro.core.errors import AbortException
from repro.history.anomalies import find_lost_updates
from repro.history.history import History, Operation
from repro.percolator import LockPolicy, PercolatorTransactionManager

ITEMS = ["a", "b", "c"]


@st.composite
def programs(draw):
    num_txns = draw(st.integers(min_value=2, max_value=5))
    return [
        [
            (draw(st.sampled_from("rw")), draw(st.sampled_from(ITEMS)))
            for _ in range(draw(st.integers(min_value=0, max_value=4)))
        ]
        for _ in range(num_txns)
    ]


def execute(program, seed: int, policy: LockPolicy):
    """Random interleaving against Percolator; returns committed
    footprints and the committed-projection history."""
    manager = PercolatorTransactionManager(lock_policy=policy)
    rng = random.Random(seed)
    states = []
    for ops in program:
        txn = manager.begin()
        states.append({"txn": txn, "ops": list(ops)})
    trace: List[Operation] = []
    footprints = []
    while states:
        state = rng.choice(states)
        txn = state["txn"]
        try:
            if state["ops"]:
                kind, item = state["ops"].pop(0)
                if kind == "r":
                    txn.read(item)
                else:
                    txn.write(item, txn.start_ts)
                trace.append(Operation(kind, txn.start_ts, item))
                continue
            txn.commit()
            trace.append(Operation("c", txn.start_ts))
            footprints.append(
                TxnFootprint(
                    txn.start_ts,
                    txn.start_ts,
                    txn.commit_ts,
                    frozenset(txn.read_set),
                    frozenset(txn.write_set),
                )
            )
        except AbortException:
            trace.append(Operation("a", txn.start_ts))
        states.remove(state)
    history = History(trace)
    committed = set(history.committed_transactions())
    return footprints, History([op for op in trace if op.txn in committed])


@given(
    program=programs(),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    policy=st.sampled_from([LockPolicy.ABORT_SELF, LockPolicy.FORCE_ABORT_HOLDER]),
)
@settings(max_examples=120, deadline=None)
def test_percolator_committed_set_has_no_ww_conflicts(program, seed, policy):
    footprints, _ = execute(program, seed, policy)
    for i, a in enumerate(footprints):
        for b in footprints[i + 1:]:
            assert not ww_conflict(a, b), (a, b)


@given(program=programs(), seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=120, deadline=None)
def test_percolator_histories_have_no_lost_updates(program, seed):
    _, history = execute(program, seed, LockPolicy.ABORT_SELF)
    if history.operations:
        assert find_lost_updates(history) == []


@given(program=programs(), seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=80, deadline=None)
def test_percolator_snapshot_reads_are_stable(program, seed):
    # A committed transaction's repeated reads observed one snapshot:
    # reads-from is single-valued per (txn, item) by construction, and
    # every observed writer committed before the reader began.
    _, history = execute(program, seed, LockPolicy.ABORT_SELF)
    if not history.operations:
        return
    reads = history.reads_from(snapshot_reads=True)
    for (reader, item), writer in reads.items():
        if writer is not None and writer != reader:
            commit_pos = history.commit_position(writer)
            assert commit_pos is not None
            assert commit_pos < history.start_position(reader)


def test_percolator_admits_write_skew_like_any_si():
    """Percolator is SI: the skew program must commit on some schedule."""
    program = [
        [("r", "a"), ("r", "b"), ("w", "a")],
        [("r", "a"), ("r", "b"), ("w", "b")],
    ]
    from repro.history.serializability import is_serializable

    for seed in range(60):
        _, history = execute(program, seed, LockPolicy.ABORT_SELF)
        if len(history.committed_transactions()) == 2 and not is_serializable(
            history
        ):
            return  # found the admitted skew
    raise AssertionError("Percolator never admitted the write skew")
