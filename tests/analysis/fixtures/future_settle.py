"""Fixture for the ``future-discipline`` pass.

Direct stores to ``._result``/``._done`` settle a future outside the
blessed resolve paths; reviewed settle sites carry a skip.
"""


class MiniFuture:
    def __init__(self, start_ts):
        self.start_ts = start_ts

    def resolve(self, result):
        self._result = result  # EXPECT: future-discipline
        self._done = True  # EXPECT: future-discipline


def settle_inline(future, result):
    future._result = result  # EXPECT: future-discipline


def read_only(future):
    return future.start_ts


def blessed_settle(future):
    future._done = True  # lint: skip=future-discipline -- fixture blessed
