#!/usr/bin/env python3
"""The paper's evaluation in miniature: SI vs WSI over the cluster sim.

Runs the mixed YCSB-style workload (§6.1) through the discrete-event
cluster simulation at a few client counts for each key distribution, and
prints the latency / throughput / abort-rate comparison — a fast version
of Figures 6-10 (the full sweeps live in benchmarks/).

A second section scales the oracle out (§6.3 footnote 6): the standard
YCSB workload A through a group-commit frontend over the partitioned
oracle, with the row-placement policy and the protocol-round executor
chosen on the command line — the two levers of the pluggable-executor
PR (benchmark E21 measures their bars).

Run:  python examples/ycsb_cluster.py            # quick (~30 s)
      python examples/ycsb_cluster.py --full     # the paper's client sweep
      python examples/ycsb_cluster.py --sharding directory --executor parallel
"""

import argparse
import time

from repro.bench import format_table
from repro.core.partitioned import PartitionedOracle
from repro.core.sharding import make_sharding
from repro.server import OracleFrontend
from repro.sim import ClusterSim
from repro.wal.bookkeeper import BookKeeperWAL
from repro.workload.ycsb import ycsb

QUICK_CLIENTS = [20, 80, 320]
FULL_CLIENTS = [5, 10, 20, 40, 80, 160, 320, 640]

PARTITIONS = 4
GROUPS = 8
KEYSPACE = 4_096
NUM_TXNS = 4_000


def run(distribution: str, clients, measure: float):
    print(f"\n=== mixed workload, {distribution} distribution ===")
    rows = []
    for n in clients:
        per_level = {}
        for level in ("si", "wsi"):
            result = ClusterSim(
                level=level,
                distribution=distribution,
                num_clients=n,
                measure=measure,
                warmup=1.0,
                seed=42,
            ).run()
            per_level[level] = result
        si, wsi = per_level["si"], per_level["wsi"]
        rows.append(
            (
                n,
                f"{si.throughput_tps:.0f}",
                f"{si.avg_latency_ms:.0f}",
                f"{100 * si.abort_rate:.1f}%",
                f"{wsi.throughput_tps:.0f}",
                f"{wsi.avg_latency_ms:.0f}",
                f"{100 * wsi.abort_rate:.1f}%",
            )
        )
    print(
        format_table(
            ["clients", "SI TPS", "SI ms", "SI ab", "WSI TPS", "WSI ms", "WSI ab"],
            rows,
        )
    )


def run_partitioned(sharding_name: str, executor_name: str) -> None:
    """YCSB A, group-local, through the partitioned frontend with the
    chosen placement policy and round executor (wall clock)."""
    print(
        f"\n=== partitioned oracle: sharding={sharding_name}, "
        f"executor={executor_name}, {PARTITIONS} partitions ==="
    )
    workload = ycsb(
        "A", keyspace=KEYSPACE, max_rows=8, seed=7, num_groups=GROUPS
    )
    if sharding_name == "directory":
        policy = make_sharding(
            "directory", directory=workload.group_directory(PARTITIONS)
        )
    else:
        policy = make_sharding(sharding_name, keyspace=KEYSPACE)
    oracle = PartitionedOracle(
        level="wsi",
        num_partitions=PARTITIONS,
        sharding=policy,
        executor=executor_name,
    )
    frontend = OracleFrontend(oracle, max_batch=32, wal=BookKeeperWAL())
    requests = [
        spec.commit_request(frontend.begin())
        for spec in workload.stream(NUM_TXNS)
    ]
    t0 = time.perf_counter()
    for request in requests:
        frontend.submit_commit_nowait(request)
    frontend.flush()
    dt = time.perf_counter() - t0
    stats = frontend.stats
    print(
        format_table(
            ["ops/s", "commits", "aborts", "cross frac",
             "check rounds/flush", "max rounds/part", "validate ms",
             "install ms"],
            [(
                f"{NUM_TXNS / dt:,.0f}",
                oracle.stats.commits,
                oracle.stats.aborts,
                f"{100 * oracle.cross_partition_fraction():.1f}%",
                f"{stats.partition_check_rounds / max(stats.batches, 1):.2f}",
                stats.max_partition_rounds_seen,
                f"{1000 * stats.partition_validate_seconds:.1f}",
                f"{1000 * stats.partition_install_seconds:.1f}",
            )],
            title=f"YCSB A, group-local ({GROUPS} groups), batch 32",
        )
    )
    # close() joins an owned parallel executor's worker threads.
    frontend.close()
    print(
        "\nPlacement is the locality lever: hash sharding scatters each"
        "\ngroup's rows over every partition (high cross fraction), while"
        "\nrange/directory sharding keeps each key group on one partition"
        "\n(cross fraction ~0).  The executor is the overlap lever: serial"
        "\ndrives each partition's round in turn, parallel overlaps rounds"
        "\n— which pays off once rounds carry real (GIL-releasing) RPC"
        "\nlatency; see benchmark E21."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="the paper's full client sweep"
    )
    parser.add_argument(
        "--sharding",
        choices=["hash", "range", "directory"],
        default="hash",
        help="row-placement policy for the partitioned-oracle section",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "parallel"],
        default="serial",
        help="protocol-round executor for the partitioned-oracle section",
    )
    parser.add_argument(
        "--skip-cluster",
        action="store_true",
        help="only run the partitioned-oracle section",
    )
    args = parser.parse_args()
    if not args.skip_cluster:
        clients = FULL_CLIENTS if args.full else QUICK_CLIENTS
        measure = 8.0 if args.full else 4.0
        for distribution in ("uniform", "zipfian", "zipfianLatest"):
            run(distribution, clients, measure)
        print(
            "\nTakeaways (matching §6.4-6.5): WSI tracks SI closely everywhere;"
            "\nuniform aborts ~0; zipfian conflicts grow with throughput; and the"
            "\nzipfianLatest read sets drawn from fresh writes cost WSI a slightly"
            "\nhigher abort rate — the price of serializability."
        )
    run_partitioned(args.sharding, args.executor)


if __name__ == "__main__":
    main()
