"""racecheck over the real paths: ParallelExecutor rounds + HA failover.

The acceptance stress: with checking active, the partitioned oracle's
three-phase protocol fans its rounds over a real thread pool (shard
locks taken from pool threads), the serving tier batches and flushes
(frontend swap lock, WAL buffer lock), and a leader crash drives the
failover path (``fail_pending`` under the dead host's flush lock, WAL
``drop_pending``) — and the whole run must end with an acyclic lock
order and zero unguarded accesses.
"""

import pytest

from repro.analysis.racecheck import checking
from repro.core.executor import ParallelExecutor
from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest
from repro.server import ReplicatedFrontend
from repro.server.frontend import OracleFrontend

PARTS = 4


def cross_requests(oracle, n, tag):
    """n commit requests whose write sets straddle partitions."""
    return [
        CommitRequest(
            oracle.begin(),
            write_set=frozenset({f"{tag}-a{i}", f"{tag}-b{i}", f"{tag}-c{i}"}),
        )
        for i in range(n)
    ]


def test_parallel_executor_protocol_rounds_run_clean():
    executor = ParallelExecutor(max_workers=PARTS)
    try:
        with checking() as rc:
            oracle = PartitionedOracle(
                num_partitions=PARTS,
                executor=executor,
                round_latency=0.0002,  # forces the executor fan-out
            )
            for batch in range(6):
                results = oracle.decide_batch(
                    cross_requests(oracle, 16, f"b{batch}")
                )
                assert len(results) == 16
        # checking() already asserted clean; prove the instrumentation
        # actually saw the shard locks from the pool threads.
        assert rc.acquisitions > 0
        assert not rc.violations
    finally:
        executor.shutdown()


def test_frontend_over_parallel_partitioned_backend_runs_clean():
    executor = ParallelExecutor(max_workers=PARTS)
    try:
        with checking() as rc:
            oracle = PartitionedOracle(
                num_partitions=PARTS,
                executor=executor,
                round_latency=0.0002,
            )
            frontend = OracleFrontend(oracle, max_batch=8)
            futures = []
            for i in range(32):
                futures.append(
                    frontend.submit_commit(
                        CommitRequest(
                            frontend.begin(),
                            write_set=frozenset({f"x{i}", f"y{i}"}),
                        )
                    )
                )
            frontend.flush()
            assert all(f.done for f in futures)
        assert rc.acquisitions > 0
    finally:
        executor.shutdown()


def test_ha_failover_paths_run_clean():
    with checking() as rc:
        rf = ReplicatedFrontend(num_hosts=3, max_batch=100)
        # Steady state: decided + durable before any crash.
        durable = [
            rf.submit_commit(CommitRequest(rf.begin(), write_set=frozenset({f"d{i}"})))
            for i in range(8)
        ]
        rf.flush()
        assert all(f.done for f in durable)
        # Crash the leader mid-open-batch, twice: fail_pending +
        # drop_pending + promotion + retry all run under the checker.
        for round_no in range(2):
            caught = rf.submit_commit(
                CommitRequest(rf.begin(), write_set=frozenset({f"mid{round_no}"}))
            )
            rf.kill_active()
            rf.flush()
            assert caught.done and caught.outcome() == "committed"
        assert rf.failovers == 2
    assert rc.acquisitions > 0
    assert not rc.violations


def test_seeded_inversion_in_protocol_shaped_code_is_caught():
    # The repro the detector exists for: two code paths touching two
    # shards in opposite orders (the classic cross-partition deadlock).
    with pytest.raises(Exception) as excinfo:
        with checking() as rc:
            shard_a, shard_b = rc.lock("shard[0]"), rc.lock("shard[1]")

            def transfer(src, dst):
                with src:
                    with dst:
                        pass

            transfer(shard_a, shard_b)
            transfer(shard_b, shard_a)  # opposite order: potential deadlock
    assert "lock-order cycle" in str(excinfo.value)


def test_fixed_ordering_in_protocol_shaped_code_is_accepted():
    # The fix: always lock shards in index order, as the partitioned
    # oracle's coordinator does by construction.
    with checking() as rc:
        shard_a, shard_b = rc.lock("shard[0]"), rc.lock("shard[1]")

        def transfer_ordered():
            with shard_a:
                with shard_b:
                    pass

        for _ in range(4):
            transfer_ordered()
    assert not rc.violations
