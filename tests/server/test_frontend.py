"""Unit tests for the group-commit frontend's mechanics.

Batching triggers, future resolution, read-only fast path, WAL group
records, client sessions — the protocol-level equivalence is covered by
the property suite in test_equivalence_properties.py.
"""

import pytest

from repro.core.errors import DecisionPending, InvalidTransactionState, OracleClosed
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.server import CLIENT_ABORT, OracleFrontend
from repro.wal.bookkeeper import GROUP_COMMIT_RECORD, BookKeeperWAL


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


def make_frontend(level="wsi", **kwargs):
    wal = BookKeeperWAL()
    oracle = make_oracle(level, wal=wal)
    return OracleFrontend(oracle, **kwargs), oracle, wal


def decision_records(wal):
    """Commit/abort records appended so far (the timestamp oracle also
    writes ts-reserve records, which are not decisions)."""
    wal.flush()
    return [
        r
        for batch in wal._ledger.replay()
        for r in batch
        if r.kind != "ts-reserve"
    ]


class TestBatchingTriggers:
    def test_count_trigger_flushes_at_max_batch(self):
        frontend, oracle, _ = make_frontend(max_batch=3)
        futures = [
            frontend.submit_commit(req(frontend.begin(), writes={f"r{i}"}))
            for i in range(2)
        ]
        assert all(not f.done for f in futures)
        assert frontend.pending_count == 2
        last = frontend.submit_commit(req(frontend.begin(), writes={"r9"}))
        assert last.done and last.committed
        assert all(f.done for f in futures)
        assert frontend.pending_count == 0
        assert frontend.stats.flushes_by_count == 1

    def test_timer_trigger_via_manual_clock(self):
        frontend, _, _ = make_frontend(max_batch=100, flush_interval=0.005)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        assert not frontend.tick()  # interval not yet elapsed
        frontend.advance_time(0.004)
        assert not frontend.tick()
        frontend.advance_time(0.002)
        assert frontend.tick()
        assert future.done and future.committed
        assert frontend.stats.flushes_by_timer == 1

    def test_tick_without_pending_is_noop(self):
        frontend, _, _ = make_frontend()
        frontend.advance_time(1.0)
        assert not frontend.tick()

    def test_scheduler_driven_flush(self):
        scheduled = []
        frontend, _, _ = make_frontend(
            max_batch=100,
            flush_interval=0.005,
            scheduler=lambda delay, cb: scheduled.append((delay, cb)),
        )
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        assert len(scheduled) == 1 and scheduled[0][0] == 0.005
        scheduled[0][1]()  # the engine fires the timer
        assert future.done
        # a stale timer (armed for an already-flushed batch) must not
        # flush the next batch early
        next_future = frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        scheduled[0][1]()
        assert not next_future.done
        assert len(scheduled) == 2  # the new batch armed its own timer

    def test_explicit_flush(self):
        frontend, _, _ = make_frontend(max_batch=100)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        flushed = frontend.flush()
        assert future.done and flushed.commits == 1
        assert frontend.stats.flushes_by_force == 1
        assert frontend.flush() is None  # nothing pending

    def test_batch_bounded_by_max_batch(self):
        frontend, _, _ = make_frontend(max_batch=4)
        for _ in range(10):
            frontend.submit_commit(req(frontend.begin(), writes={"x"}))
        assert frontend.stats.max_batch_seen <= 4
        assert frontend.pending_count == 2  # 10 = 2 full batches + 2


class TestFutures:
    def test_pending_future_raises_until_flush(self):
        frontend, _, _ = make_frontend(max_batch=10)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        assert not future.done
        with pytest.raises(DecisionPending):
            future.committed
        with pytest.raises(DecisionPending):
            future.result()
        frontend.flush()
        assert future.committed and future.commit_ts is not None
        result = future.result()
        assert result.committed and result.commit_ts == future.commit_ts

    def test_callback_fires_at_flush(self):
        frontend, _, _ = make_frontend(max_batch=10)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        seen = []
        future.add_done_callback(seen.append)
        assert not seen
        frontend.flush()
        assert seen == [future]

    def test_callback_on_resolved_future_fires_immediately(self):
        frontend, _, _ = make_frontend(max_batch=1)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]

    def test_conflict_future_carries_reason_and_row(self):
        frontend, _, _ = make_frontend(level="wsi", max_batch=10)
        stale = frontend.begin()
        writer = frontend.begin()
        frontend.submit_commit(req(writer, writes={"x"}))
        future = frontend.submit_commit(req(stale, writes={"y"}, reads={"x"}))
        frontend.flush()
        assert not future.committed
        result = future.result()
        assert result.reason == "rw-conflict" and result.conflict_row == "x"

    def test_client_abort_future(self):
        frontend, oracle, _ = make_frontend(max_batch=10)
        start = frontend.begin()
        future = frontend.submit_abort(start)
        frontend.flush()
        assert not future.committed
        assert future.result().reason == CLIENT_ABORT
        assert oracle.commit_table.is_aborted(start)


class TestReadOnlyFastPath:
    def test_read_only_resolves_immediately_without_batching(self):
        frontend, oracle, wal = make_frontend(max_batch=10)
        future = frontend.submit_commit(req(frontend.begin()))
        assert future.done and future.committed and future.commit_ts is None
        assert frontend.pending_count == 0
        assert decision_records(wal) == []
        assert oracle.stats.read_only_commits == 1
        assert frontend.stats.read_only_fast_path == 1

    def test_read_only_only_traffic_writes_no_wal_record(self):
        # §5.1: read-only transactions never cost a WAL write — a "batch"
        # made only of them is empty and flushes nothing.
        frontend, _, wal = make_frontend(max_batch=4)
        for _ in range(10):
            frontend.submit_commit(req(frontend.begin()))
        assert frontend.flush() is None
        assert decision_records(wal) == []
        assert frontend.stats.batches == 0


class TestWALGroupRecords:
    def test_one_group_record_per_batch(self):
        frontend, _, wal = make_frontend(max_batch=8)
        for _ in range(24):
            frontend.submit_commit(req(frontend.begin(), writes={"x"}))
        records = decision_records(wal)
        assert len(records) == 3  # 3 batches -> 3 logical records
        assert {r.kind for r in records} == {GROUP_COMMIT_RECORD}

    def test_group_record_payload_matches_batch(self):
        frontend, _, wal = make_frontend(max_batch=10)
        s1 = frontend.begin()
        s2 = frontend.begin()
        frontend.submit_commit(req(s1, writes={"a", "b"}))
        frontend.submit_abort(s2)
        flushed = frontend.flush()
        (record,) = decision_records(wal)
        commits, aborts = record.payload
        assert [c[0] for c in commits] == [s1]
        assert set(commits[0][2]) == {"a", "b"}
        assert aborts == (s2,)
        assert flushed.committed_payload == commits
        assert flushed.aborted_payload == aborts

    def test_nowait_outcomes_delivered_via_flushed_batch(self):
        frontend, oracle, _ = make_frontend(max_batch=10)
        batches = []
        frontend.on_flush(batches.append)
        s1 = frontend.begin()
        s2 = frontend.begin()
        frontend.submit_commit_nowait(req(s1, writes={"a"}))
        # s2 read "a", which s1 writes *earlier in the same batch*: in
        # batch order s1's install precedes s2's check, so s2 aborts —
        # exactly what the unbatched oracle fed the same order decides.
        frontend.submit_commit_nowait(req(s2, writes={"b"}, reads={"a"}))
        frontend.submit_abort_nowait(frontend.begin())
        frontend.flush()
        (batch,) = batches
        assert batch.commits + batch.aborts == 3
        assert [c[0] for c in batch.committed_payload] == [s1]
        assert len(batch.aborted_payload) == 2
        assert batch.futures == []  # nowait: no per-request futures
        assert oracle.stats.commits == 1 and oracle.stats.aborts == 2


class TestErrorIsolation:
    """One invalid request must not poison its batch: siblings decide,
    the group record persists their decisions, and the error surfaces on
    the offending future only."""

    def test_invalid_abort_does_not_poison_batch(self):
        frontend, oracle, wal = make_frontend(max_batch=100)
        committed = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        # batch 2: a valid commit sandwiched by an invalid abort (the
        # transaction already committed in batch 1)
        sibling = frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        bad = frontend.submit_abort(committed.start_ts)
        sibling2 = frontend.submit_commit(req(frontend.begin(), writes={"c"}))
        flushed = frontend.flush()
        assert sibling.committed and sibling2.committed
        assert bad.done
        with pytest.raises(ValueError, match="already committed"):
            bad.committed
        assert isinstance(bad.error, ValueError)
        assert len(flushed.errors) == 1 and flushed.errors[0][0] == committed.start_ts
        # the siblings' decisions are durable and recovery matches live state
        wal.flush()
        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        assert fresh.last_commit("b") == sibling.commit_ts
        assert fresh.last_commit("c") == sibling2.commit_ts
        assert dict(fresh._last_commit) == dict(oracle._last_commit)

    def test_errored_future_still_fires_callbacks(self):
        frontend, _, _ = make_frontend(max_batch=100)
        done = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        bad = frontend.submit_abort(done.start_ts)
        seen = []
        bad.add_done_callback(seen.append)
        frontend.flush()
        assert seen == [bad]

    def test_session_counts_errors_separately(self):
        frontend, oracle, _ = make_frontend(max_batch=100)
        session = frontend.session()
        start = session.begin()
        session.commit(write_set={"a"}, start_ts=start)
        frontend.flush()
        # misuse the raw frontend to abort the already-committed txn
        bad = frontend.submit_abort(start)
        bad.add_done_callback(session._tally)
        frontend.flush()
        assert session.commits == 1 and session.aborts == 0
        assert oracle.stats.aborts == 0  # backend recorded nothing for it


class TestLifecycle:
    def test_close_flushes_pending_and_wal(self):
        frontend, oracle, wal = make_frontend(max_batch=100)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.close()
        assert future.done
        assert wal.pending_count == 0  # WAL flushed too
        with pytest.raises(OracleClosed):
            frontend.begin()
        with pytest.raises(OracleClosed):
            frontend.submit_commit(req(1))
        # the backend stays open: the frontend is a layer, not the owner
        assert oracle.commit(req(oracle.begin(), writes={"z"})).committed

    def test_constructor_validation(self):
        oracle = make_oracle("wsi")
        with pytest.raises(ValueError):
            OracleFrontend(oracle, max_batch=0)
        with pytest.raises(ValueError):
            OracleFrontend(oracle, flush_interval=0)

    def test_explicit_wal_for_walless_backend(self):
        from repro.core.partitioned import PartitionedOracle

        wal = BookKeeperWAL()
        oracle = PartitionedOracle(level="wsi", num_partitions=2)
        frontend = OracleFrontend(oracle, max_batch=4, wal=wal)
        for _ in range(4):
            frontend.submit_commit(req(frontend.begin(), writes={"k"}))
        # the partitioned oracle gained a WAL: one group record for the
        # batch — and its shared TSO, which persists nothing on its own,
        # gained reservation durability through the same WAL
        assert len(decision_records(wal)) == 1
        assert oracle.timestamp_oracle.persists_reservations


class TestBeginLease:
    """The begin-side amortization: ``begin_lease=n`` takes one backend
    lease per ``n`` begins and serves the block locally."""

    def test_default_is_per_call(self):
        frontend, oracle, _ = make_frontend()
        for _ in range(5):
            frontend.begin()
        assert frontend.stats.begin_leases == 0
        assert oracle.timestamp_oracle.lease_count == 0
        assert oracle.timestamp_oracle.issued_count == 5

    def test_leased_begins_are_consecutive_and_refill(self):
        frontend, oracle, _ = make_frontend(begin_lease=8)
        starts = [frontend.begin() for _ in range(20)]
        # No commit traffic interleaves, so leases are back-to-back and
        # the served begins are exactly what per-call would serve.
        assert starts == list(range(1, 21))
        assert frontend.stats.begin_leases == 3  # ceil(20 / 8)
        assert oracle.timestamp_oracle.lease_count == 3
        assert frontend.begin_lease_remaining == 4

    def test_leased_begins_strictly_increase_across_flushes(self):
        frontend, oracle, _ = make_frontend(begin_lease=4, max_batch=100)
        starts = [frontend.begin() for _ in range(3)]  # lease [1..4]
        frontend.submit_commit(req(starts[0], writes={"a"}))
        frontend.flush()  # Tc = 5, above the whole lease block
        starts.append(frontend.begin())  # 4, still from the first lease
        starts.extend(frontend.begin() for _ in range(2))  # refill above Tc
        assert starts == [1, 2, 3, 4, 6, 7]
        assert all(b > a for a, b in zip(starts, starts[1:]))
        # commit timestamps and begins never collide
        assert set(starts).isdisjoint(oracle.commit_table._commits.values())

    def test_commit_ts_always_exceeds_leased_start(self):
        frontend, oracle, _ = make_frontend(begin_lease=16, max_batch=4)
        futures = []
        for i in range(12):
            futures.append(
                frontend.submit_commit(req(frontend.begin(), writes={f"r{i}"}))
            )
        frontend.flush()
        for future in futures:
            assert future.commit_ts > future.start_ts

    def test_begin_many_drains_lease_then_leases_shortfall(self):
        frontend, oracle, _ = make_frontend(begin_lease=8)
        assert [frontend.begin() for _ in range(3)] == [1, 2, 3]
        starts = frontend.begin_many(10)
        assert starts == list(range(4, 14))  # [4..8] drained + lease(5)
        assert frontend.begin_lease_remaining == 0
        assert frontend.stats.begin_leases == 2

    def test_begin_many_at_lease_one_is_one_round_trip(self):
        frontend, oracle, _ = make_frontend()  # begin_lease=1
        starts = frontend.begin_many(6)
        assert starts == list(range(1, 7))
        assert frontend.stats.begin_leases == 1
        assert oracle.timestamp_oracle.lease_count == 1

    def test_begin_many_validates(self):
        frontend, _, _ = make_frontend()
        with pytest.raises(ValueError):
            frontend.begin_many(0)

    def test_constructor_rejects_bad_lease(self):
        oracle = make_oracle("wsi")
        with pytest.raises(ValueError):
            OracleFrontend(oracle, begin_lease=0)

    def test_close_drops_unserved_lease(self):
        frontend, oracle, _ = make_frontend(begin_lease=8)
        frontend.begin()
        assert frontend.begin_lease_remaining == 7
        frontend.close()
        assert frontend.begin_lease_remaining == 0
        with pytest.raises(OracleClosed):
            frontend.begin()
        with pytest.raises(OracleClosed):
            frontend.begin_many(2)
        # the dropped remainder is a gap, never reused: the backend's
        # cursor already moved past the whole block
        assert oracle.begin() > 8

    def test_foreign_backend_degrades_to_per_call(self):
        class ForeignOracle:
            def __init__(self):
                self.backing = make_oracle("wsi")
                self.stats = self.backing.stats
                self.naive_read_only = False

            def begin(self):
                return self.backing.begin()

            def commit(self, request):
                return self.backing.commit(request)

            def abort(self, start_ts):
                self.backing.abort(start_ts)

        frontend = OracleFrontend(
            ForeignOracle(), wal=BookKeeperWAL(), begin_lease=8
        )
        assert [frontend.begin() for _ in range(3)] == [1, 2, 3]
        assert frontend.stats.begin_leases == 0  # no lease surface
        assert frontend.begin_many(3) == [4, 5, 6]


class TestCommitFutureOutcome:
    """The public outcome surface (``outcome()``): what the session tally
    reads instead of future internals — pinned against the private
    fields across decision paths."""

    def test_pending_outcome_raises(self):
        frontend, _, _ = make_frontend(max_batch=10)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        with pytest.raises(DecisionPending):
            future.outcome()

    def test_outcome_tags(self):
        frontend, _, _ = make_frontend(level="wsi", max_batch=100)
        ro = frontend.submit_commit(req(frontend.begin()))
        assert ro.outcome() == "read-only"  # resolves at submit
        stale = frontend.begin()
        writer = frontend.submit_commit(req(frontend.begin(), writes={"x"}))
        conflict = frontend.submit_commit(req(stale, writes={"y"}, reads={"x"}))
        client = frontend.submit_abort(frontend.begin())
        frontend.flush()
        assert writer.outcome() == "committed"
        assert conflict.outcome() == "aborted"
        assert client.outcome() == "aborted"

    def test_error_outcome_does_not_raise(self):
        frontend, _, _ = make_frontend(max_batch=100)
        done = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        bad = frontend.submit_abort(done.start_ts)
        frontend.flush()
        assert bad.outcome() == "error"  # committed/result() would raise
        assert isinstance(bad.error, ValueError)

    @pytest.mark.parametrize("per_request", [False, True])
    def test_outcome_matches_private_state_across_paths(self, per_request):
        oracle = make_oracle("wsi")
        frontend = OracleFrontend(
            oracle, max_batch=100, wal=BookKeeperWAL(), per_request=per_request
        )
        futures = {
            "ro": frontend.submit_commit(req(frontend.begin())),
        }
        stale = frontend.begin()
        futures["commit"] = frontend.submit_commit(
            req(frontend.begin(), writes={"x"})
        )
        futures["conflict"] = frontend.submit_commit(
            req(stale, writes={"y"}, reads={"x"})
        )
        futures["client"] = frontend.submit_abort(frontend.begin())
        frontend.flush()
        futures["error"] = frontend.submit_abort(futures["commit"].start_ts)
        frontend.flush()
        expected = {
            "ro": "read-only",
            "commit": "committed",
            "conflict": "aborted",
            "client": "aborted",
            "error": "error",
        }
        for name, future in futures.items():
            assert future.outcome() == expected[name]
            # the tag is derived state, never divergent from internals
            if expected[name] == "error":
                assert future._error is not None
            elif expected[name] == "aborted":
                assert future._error is None and not future._committed
            else:
                assert future._committed
                assert (future._commit_ts is None) == (
                    expected[name] == "read-only"
                )


class TestSessionSubmitFailure:
    """`_resolve_open` regression: a transaction must not vanish from the
    session when ``submit_*`` raises — it is removed only once the
    future is obtained."""

    def test_failed_commit_submit_keeps_transaction_open(self):
        frontend, _, _ = make_frontend(max_batch=10)
        session = frontend.session()
        start = session.begin()
        frontend.close()
        with pytest.raises(OracleClosed):
            session.commit(write_set={"a"})
        # Still open and still addressable — OracleClosed again, not
        # InvalidTransactionState (which would mean it was lost).
        assert session.open_count == 1
        with pytest.raises(OracleClosed):
            session.commit(write_set={"a"}, start_ts=start)
        assert session.submitted == 0

    def test_failed_abort_submit_keeps_transaction_open(self):
        frontend, _, _ = make_frontend(max_batch=10)
        session = frontend.session()
        session.begin()
        frontend.close()
        with pytest.raises(OracleClosed):
            session.abort()
        assert session.open_count == 1
        with pytest.raises(OracleClosed):
            session.abort()

    def test_unknown_transaction_still_rejected_before_submit(self):
        frontend, _, _ = make_frontend(max_batch=10)
        session = frontend.session()
        with pytest.raises(InvalidTransactionState):
            session.commit(write_set={"a"})
        assert frontend.pending_count == 0  # nothing was submitted


class TestClientSession:
    def test_session_commit_and_tally(self):
        frontend, _, _ = make_frontend(max_batch=10)
        session = frontend.session(name="s1")
        session.begin()
        future = session.commit(write_set={"a"})
        assert session.submitted == 1 and session.decided == 0
        frontend.flush()
        assert future.committed
        assert session.commits == 1 and session.aborts == 0

    def test_session_read_only_tally(self):
        frontend, _, _ = make_frontend()
        session = frontend.session()
        session.begin()
        future = session.commit()
        assert future.done and session.read_only_commits == 1

    def test_session_multiple_in_flight(self):
        frontend, _, _ = make_frontend(max_batch=10)
        session = frontend.session()
        t1 = session.begin()
        t2 = session.begin()
        assert session.open_count == 2
        session.commit(write_set={"a"}, start_ts=t1)
        session.commit(write_set={"b"}, start_ts=t2)
        frontend.flush()
        assert session.commits == 2 and session.open_count == 0

    def test_session_rejects_unknown_transaction(self):
        frontend, _, _ = make_frontend()
        session = frontend.session()
        with pytest.raises(InvalidTransactionState):
            session.commit(write_set={"a"})
        session.begin()
        session.commit(write_set={"a"})
        with pytest.raises(InvalidTransactionState):
            session.commit(write_set={"a"})  # already submitted

    def test_session_abort(self):
        frontend, oracle, _ = make_frontend(max_batch=10)
        session = frontend.session()
        start = session.begin()
        session.abort()
        frontend.flush()
        assert session.aborts == 1
        assert oracle.commit_table.is_aborted(start)

    def test_session_begin_many(self):
        frontend, _, _ = make_frontend(max_batch=100, begin_lease=8)
        session = frontend.session()
        starts = session.begin_many(5)
        assert len(starts) == 5 and session.open_count == 5
        # the last begun is the default commit target
        default = session.commit(write_set={"a"})
        assert default.start_ts == starts[-1]
        for start in starts[:-1]:
            session.commit(write_set={"b"}, start_ts=start)
        frontend.flush()
        assert session.commits == 5 and session.open_count == 0

    @pytest.mark.parametrize("per_request", [False, True])
    def test_session_tally_parity_across_decision_paths(self, per_request):
        """The tally reads ``outcome()``, so it must classify the same
        mixed traffic identically whichever engine decided it."""
        oracle = make_oracle("wsi")
        frontend = OracleFrontend(
            oracle, max_batch=100, wal=BookKeeperWAL(), per_request=per_request
        )
        session = frontend.session()
        session.begin()
        session.commit()  # read-only
        stale = session.begin()
        session.begin()
        session.commit(write_set={"x"})  # committed writer
        session.commit(write_set={"y"}, read_set={"x"}, start_ts=stale)
        session.begin()
        session.abort()
        frontend.flush()
        tally = (
            session.commits,
            session.read_only_commits,
            session.aborts,
            session.errors,
        )
        assert tally == (2, 1, 2, 0)


class TestFutureStateParity:
    """A resolved future must be indistinguishable across decision paths
    (batch engines, the per-request fallback path, single- and
    cross-partition branches of the partitioned engine)."""

    FUTURE_SLOTS = (
        "_done", "_committed", "_commit_ts", "_reason", "_row", "_error"
    )

    def _snapshot(self, future):
        # _result is built lazily on first read in every path; force it
        # so the comparison covers the full resolved surface.
        result = future.result() if future._error is None else None
        return (
            tuple(getattr(future, slot) for slot in self.FUTURE_SLOTS),
            result,
        )

    def _drive(self, frontend):
        """One commit, one conflict abort, one cross-partition commit,
        one client abort — resolved futures returned in that order."""
        t1 = frontend.begin()
        stale = frontend.begin()
        f_commit = frontend.submit_commit(req(t1, writes={0, 1, 2, 3}))
        frontend.flush()
        f_conflict = frontend.submit_commit(
            req(stale, writes={0}, reads={0})
        )
        t3 = frontend.begin()
        f_cross = frontend.submit_commit(req(t3, writes={4, 5, 6, 7}))
        t4 = frontend.begin()
        f_client = frontend.submit_abort(t4)
        frontend.flush()
        return [f_commit, f_conflict, f_cross, f_client]

    def test_partitioned_engine_vs_per_request_mode(self):
        from repro.core.partitioned import PartitionedOracle

        snapshots = []
        for per_request in (False, True):
            oracle = PartitionedOracle(level="wsi", num_partitions=4)
            frontend = OracleFrontend(
                oracle, max_batch=32, wal=BookKeeperWAL(),
                per_request=per_request,
            )
            futures = self._drive(frontend)
            snapshots.append([self._snapshot(f) for f in futures])
        engine_state, per_request_state = snapshots
        assert engine_state == per_request_state

    @pytest.mark.parametrize("level", ["si", "wsi"])
    def test_monolithic_engine_vs_per_request_mode(self, level):
        snapshots = []
        for per_request in (False, True):
            oracle = make_oracle(level)
            frontend = OracleFrontend(
                oracle, max_batch=32, wal=BookKeeperWAL(),
                per_request=per_request,
            )
            futures = self._drive(frontend)
            snapshots.append([self._snapshot(f) for f in futures])
        assert snapshots[0] == snapshots[1]

    def test_single_and_cross_commit_futures_identical_shape(self):
        from repro.core.partitioned import PartitionedOracle

        oracle = PartitionedOracle(level="wsi", num_partitions=4)
        frontend = OracleFrontend(oracle, max_batch=32, wal=BookKeeperWAL())
        t1, t2 = frontend.begin(), frontend.begin()
        f_single = frontend.submit_commit(req(t1, writes={0}))
        f_cross = frontend.submit_commit(req(t2, writes={1, 2, 3}))
        frontend.flush()
        assert oracle.single_partition_commits == 1
        assert oracle.cross_partition_commits == 1
        for future in (f_single, f_cross):
            # Identical resolution state: fields set, no eager _result.
            assert future._committed is True
            assert future._commit_ts is not None
            assert future._result is None  # built lazily...
            assert future.result().committed  # ...on first read
            assert future._result is not None


class TestProtocolRounds:
    def test_partitioned_flush_reports_rounds(self):
        from repro.core.partitioned import PartitionedOracle

        oracle = PartitionedOracle(level="wsi", num_partitions=4)
        frontend = OracleFrontend(oracle, max_batch=8, wal=BookKeeperWAL())
        cells = []
        frontend.on_flush(cells.append)
        t1, t2 = frontend.begin(), frontend.begin()
        # WSI checks the read set, so read what is written.
        frontend.submit_commit(
            req(t1, writes={0, 1, 2, 3}, reads={0, 1, 2, 3})  # all 4 shards
        )
        frontend.submit_commit(req(t2, writes={4}, reads={4}))  # shard 0
        frontend.flush()
        (cell,) = cells
        rounds = cell.protocol_rounds
        assert rounds is not None
        assert rounds.cross_requests == 1
        assert rounds.single_requests == 1
        assert rounds.check_rounds == 4
        assert rounds.install_rounds == 4
        stats = frontend.stats
        assert stats.partition_check_rounds == 4
        assert stats.partition_install_rounds == 4
        assert stats.cross_partition_requests == 1

    def test_monolithic_flush_reports_none(self):
        frontend, _, _ = make_frontend(max_batch=8)
        cells = []
        frontend.on_flush(cells.append)
        frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        assert cells[0].protocol_rounds is None
        assert frontend.stats.partition_check_rounds == 0

    def test_per_request_mode_reports_none(self):
        from repro.core.partitioned import PartitionedOracle

        oracle = PartitionedOracle(level="wsi", num_partitions=2)
        frontend = OracleFrontend(
            oracle, max_batch=8, wal=BookKeeperWAL(), per_request=True
        )
        cells = []
        frontend.on_flush(cells.append)
        frontend.submit_commit(req(frontend.begin(), writes={0, 1}))
        frontend.flush()
        assert cells[0].protocol_rounds is None


class TestFutureArena:
    """The CommitFuture freelist behind submit_commit_pooled (the
    allocation-free ingest path).  A recycled future must be
    indistinguishable from a fresh one — class-level defaults are the
    reset mechanism — and a pending future must be refused."""

    def test_pooled_submit_resolves_like_plain_submit(self):
        frontend, oracle, _ = make_frontend(max_batch=100)
        t1, t2 = frontend.begin(), frontend.begin()
        f1 = frontend.submit_commit_pooled(req(t1, writes={"x"}))
        f2 = frontend.submit_commit_pooled(req(t2, writes={"y"}, reads={"x"}))
        frontend.flush()
        assert f1.committed and f1.commit_ts is not None
        assert not f2.committed  # rw-conflict under wsi
        assert f2.result().conflict_row == "x"

    def test_recycled_future_is_fresh(self):
        frontend, _, _ = make_frontend(max_batch=100)
        t1, t2 = frontend.begin(), frontend.begin()  # t2 concurrent with t1
        f1 = frontend.submit_commit_pooled(req(t1, writes={"x"}))
        frontend.flush()
        assert f1.committed
        f1.add_done_callback(lambda f: None)
        f1.result()  # populate the lazy result cache too
        frontend.recycle_future(f1)
        f2 = frontend.submit_commit_pooled(req(t2, writes={"y"}, reads={"x"}))
        assert f2 is f1  # reuse, not allocation
        assert f2.start_ts == t2
        assert not f2.done  # all settled state was cleared
        with pytest.raises(DecisionPending):
            f2.committed
        frontend.flush()
        assert not f2.committed  # the *new* request's outcome
        assert f2.result().start_ts == t2

    def test_recycle_pending_future_refused(self):
        frontend, _, _ = make_frontend(max_batch=100)
        future = frontend.submit_commit_pooled(
            req(frontend.begin(), writes={"x"})
        )
        with pytest.raises(ValueError, match="pending"):
            frontend.recycle_future(future)
        frontend.flush()
        frontend.recycle_future(future)  # settled: accepted now

    def test_read_only_fast_path_pooled(self):
        frontend, _, _ = make_frontend(max_batch=100)
        future = frontend.submit_commit_pooled(req(frontend.begin()))
        assert future.done and future.committed
        assert future.commit_ts is None
        frontend.recycle_future(future)
        assert len(frontend.future_arena) == 1

    def test_arena_counters_and_steady_state(self):
        frontend, _, _ = make_frontend(max_batch=4)
        arena = frontend.future_arena
        outcomes = []
        live = []
        for i in range(32):
            future = frontend.submit_commit_pooled(
                req(frontend.begin(), writes={i % 8})
            )
            live.append(future)
            if len(live) == 4:  # count-trigger flushed this batch
                outcomes.extend(f.outcome() for f in live)
                for f in live:
                    frontend.recycle_future(f)
                live.clear()
        assert len(outcomes) == 32
        assert set(outcomes) == {"committed"}
        # Steady state: after the first batch allocated its 4 futures,
        # every later acquisition was served from the freelist.
        assert arena.allocated == 4
        assert arena.reused == 28
        assert arena.recycled == 32
        assert len(arena) == 4

    def test_pooled_respects_admission_control(self):
        from repro.core.errors import Overloaded

        frontend, _, _ = make_frontend(max_batch=100, max_queue_depth=2)
        arena = frontend.future_arena
        frontend.submit_commit_pooled(req(frontend.begin(), writes={"a"}))
        frontend.submit_commit_pooled(req(frontend.begin(), writes={"b"}))
        with pytest.raises(Overloaded):
            frontend.submit_commit_pooled(req(frontend.begin(), writes={"c"}))
        # The shed submit never drew from the arena (no future leaked).
        assert arena.allocated == 2
        frontend.flush()
