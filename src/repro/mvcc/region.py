"""Region model: contiguous key ranges served by one data server.

HBase "splits groups of consecutive rows of a table into multiple regions,
and each region is maintained by a single data server (RegionServer)"
(Section 6).  For the simulator we need just enough of that model to
(a) route a row to its region/server, and (b) split regions so load can
spread — the mechanism that lets the paper's 25 RegionServers share a
100M-row table.

Keys are assumed orderable (the benchmarks use integers; YCSB uses
zero-padded strings — both work).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Generic, Iterator, List, Optional, Sequence, TypeVar

from repro.core.errors import InvariantViolation

K = TypeVar("K")

# Sentinels for the open ends of the keyspace.
_NEG_INF = object()
_POS_INF = object()


@dataclass
class Region(Generic[K]):
    """A half-open key range ``[start, end)``.

    ``start is None`` means unbounded below; ``end is None`` unbounded
    above (the first/last region of a table).
    """

    region_id: int
    start: Optional[K]
    end: Optional[K]
    server_id: int = 0
    row_count: int = 0  # maintained by the hosting table for split decisions

    def contains(self, key: K) -> bool:
        if self.start is not None and key < self.start:  # type: ignore[operator]
            return False
        if self.end is not None and key >= self.end:  # type: ignore[operator]
            return False
        return True

    def __repr__(self) -> str:
        lo = "-inf" if self.start is None else repr(self.start)
        hi = "+inf" if self.end is None else repr(self.end)
        return f"Region(#{self.region_id} [{lo}, {hi}) @server{self.server_id})"


class RegionMap(Generic[K]):
    """Routing table from key to region, with splitting and rebalancing.

    Maintains regions sorted by start key.  Routing is O(log R).
    """

    def __init__(self, num_servers: int = 1) -> None:
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        self._num_servers = num_servers
        self._next_id = 0
        first = Region(self._alloc_id(), None, None, server_id=0)
        self._regions: List[Region[K]] = [first]
        # start keys of regions[1:] for bisect routing; regions[0].start is None
        self._starts: List[K] = []

    def _alloc_id(self) -> int:
        rid = self._next_id
        self._next_id += 1
        return rid

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def region_for(self, key: K) -> Region[K]:
        """Return the region containing ``key``."""
        idx = bisect.bisect_right(self._starts, key)
        return self._regions[idx]

    def server_for(self, key: K) -> int:
        """Return the server id hosting ``key``."""
        return self.region_for(key).server_id

    # ------------------------------------------------------------------
    # topology changes
    # ------------------------------------------------------------------
    def split(self, key: K) -> Region[K]:
        """Split the region containing ``key`` at ``key``.

        The new right-hand region ``[key, old_end)`` is created and
        assigned round-robin to a server.  Returns the new region.
        Splitting at a region's exact start key is a no-op that returns
        the existing region (already split there).
        """
        idx = bisect.bisect_right(self._starts, key)
        region = self._regions[idx]
        if region.start is not None and not (region.start < key):  # key == start
            return region
        right = Region(
            self._alloc_id(),
            start=key,
            end=region.end,
            server_id=self._next_id % self._num_servers,
        )
        region.end = key
        self._regions.insert(idx + 1, right)
        self._starts.insert(idx, key)
        return right

    def presplit_uniform(self, keys: Sequence[K]) -> None:
        """Split at every key in ``keys`` (sorted ascending).

        The standard way to pre-split a table for a known keyspace before
        a bulk load, e.g. 100 split points for 100M integer rows.
        """
        for key in keys:
            self.split(key)

    def rebalance_round_robin(self) -> None:
        """Reassign regions to servers round-robin (HBase balancer)."""
        for i, region in enumerate(self._regions):
            region.server_id = i % self._num_servers

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def regions(self) -> Iterator[Region[K]]:
        return iter(self._regions)

    def regions_on(self, server_id: int) -> List[Region[K]]:
        return [r for r in self._regions if r.server_id == server_id]

    @property
    def region_count(self) -> int:
        return len(self._regions)

    @property
    def num_servers(self) -> int:
        return self._num_servers

    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` if the map is not a partition.

        Used by property-based tests: regions must tile the keyspace with
        no gaps or overlaps, first start and last end unbounded.
        """
        if not self._regions:
            raise InvariantViolation("region map must never be empty")
        if self._regions[0].start is not None:
            raise InvariantViolation("first region must start unbounded")
        if self._regions[-1].end is not None:
            raise InvariantViolation("last region must end unbounded")
        for left, right in zip(self._regions, self._regions[1:]):
            if left.end != right.start:
                raise InvariantViolation(f"gap/overlap at {left} | {right}")
        if len(self._starts) != len(self._regions) - 1:
            raise InvariantViolation("split index out of sync with regions")
        for region, start in zip(self._regions[1:], self._starts):
            if region.start != start:
                raise InvariantViolation(f"split index disagrees at {region}")
