"""In-process multi-version key-value store.

This is the substrate standing in for an HBase RegionServer's storage: a
map from row key to a time-ordered list of :class:`~repro.mvcc.version.Version`
cells.  It supports the three accesses the transactional layer needs:

* ``put(row, ts, value)`` — add a version (uncommitted data is written
  directly into the store at the writer's start timestamp, exactly as in
  the paper's lock-free scheme and in Percolator);
* ``get_versions(row, max_ts)`` — retrieve versions visible *at or below*
  a timestamp, newest first (the snapshot-read primitive);
* ``delete_version(row, ts)`` — physically remove a version (used to clean
  up the writes of aborted transactions).

The store itself knows nothing about transactions or commit state; the
snapshot-filter logic that skips uncommitted/aborted/late-committed
versions lives in :mod:`repro.mvcc.snapshot`.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.mvcc.version import TOMBSTONE, Version

RowKey = Hashable


class MVCCStore:
    """A multi-version map: row key -> ordered versions.

    Versions for each row are kept sorted by timestamp ascending; lookups
    use binary search so reads are O(log V) in the number of versions.
    """

    def __init__(self) -> None:
        # row -> parallel lists (timestamps sorted asc, values)
        self._rows: Dict[RowKey, Tuple[List[int], List[Any]]] = {}
        self._put_count = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, row: RowKey, timestamp: int, value: Any) -> None:
        """Write ``value`` into ``row`` at ``timestamp``.

        Writing twice at the same (row, timestamp) overwrites in place —
        this matches HBase semantics where a cell is keyed by
        (row, column, ts) and a re-put replaces the value.
        """
        ts_list, val_list = self._rows.setdefault(row, ([], []))
        idx = bisect.bisect_left(ts_list, timestamp)
        if idx < len(ts_list) and ts_list[idx] == timestamp:
            val_list[idx] = value
        else:
            ts_list.insert(idx, timestamp)
            val_list.insert(idx, value)
        self._put_count += 1

    def delete(self, row: RowKey, timestamp: int) -> None:
        """Write a tombstone at ``timestamp`` (transactional delete)."""
        self.put(row, timestamp, TOMBSTONE)

    def delete_version(self, row: RowKey, timestamp: int) -> bool:
        """Physically remove the version at exactly ``timestamp``.

        Returns True if a version was removed.  Used to garbage-collect
        the writes of aborted transactions.
        """
        entry = self._rows.get(row)
        if entry is None:
            return False
        ts_list, val_list = entry
        idx = bisect.bisect_left(ts_list, timestamp)
        if idx < len(ts_list) and ts_list[idx] == timestamp:
            del ts_list[idx]
            del val_list[idx]
            if not ts_list:
                del self._rows[row]
            return True
        return False

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get_versions(
        self, row: RowKey, max_timestamp: Optional[int] = None
    ) -> Iterator[Version]:
        """Yield versions of ``row`` with ts <= max_timestamp, newest first.

        ``max_timestamp=None`` yields every version.  Newest-first order is
        what the snapshot reader wants: it scans until it finds the first
        version whose writer committed inside the reader's snapshot.
        """
        entry = self._rows.get(row)
        if entry is None:
            return
        ts_list, val_list = entry
        if max_timestamp is None:
            hi = len(ts_list)
        else:
            hi = bisect.bisect_right(ts_list, max_timestamp)
        for idx in range(hi - 1, -1, -1):
            yield Version(ts_list[idx], val_list[idx])

    def get_exact(self, row: RowKey, timestamp: int) -> Optional[Version]:
        """Return the version written at exactly ``timestamp``, if any."""
        entry = self._rows.get(row)
        if entry is None:
            return None
        ts_list, val_list = entry
        idx = bisect.bisect_left(ts_list, timestamp)
        if idx < len(ts_list) and ts_list[idx] == timestamp:
            return Version(timestamp, val_list[idx])
        return None

    def latest(self, row: RowKey) -> Optional[Version]:
        """Return the newest version of ``row`` regardless of commit state."""
        entry = self._rows.get(row)
        if entry is None:
            return None
        ts_list, val_list = entry
        return Version(ts_list[-1], val_list[-1])

    # ------------------------------------------------------------------
    # scans & maintenance
    # ------------------------------------------------------------------
    def scan_rows(self) -> Iterator[RowKey]:
        """Yield every row key that has at least one version."""
        return iter(list(self._rows.keys()))

    def scan_range(self, start: RowKey, end: RowKey) -> Iterator[RowKey]:
        """Yield row keys in ``[start, end)`` (requires orderable keys)."""
        for row in sorted(self._rows.keys()):  # type: ignore[type-var]
            if row >= end:  # type: ignore[operator]
                break
            if row >= start:  # type: ignore[operator]
                yield row

    def compact(self, row: RowKey, keep_after: int) -> int:
        """Drop versions of ``row`` strictly older than ``keep_after``.

        Keeps at least the newest version at or below ``keep_after`` so a
        snapshot read at that boundary still succeeds (HBase major
        compaction with TTL behaves similarly).  Returns the number of
        versions removed.
        """
        entry = self._rows.get(row)
        if entry is None:
            return 0
        ts_list, val_list = entry
        cut = bisect.bisect_right(ts_list, keep_after)
        if cut <= 1:
            return 0
        # keep index cut-1 (newest version <= keep_after) and everything after
        removed = cut - 1
        del ts_list[: cut - 1]
        del val_list[: cut - 1]
        return removed

    # ------------------------------------------------------------------
    # stats / dunder
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def version_count(self) -> int:
        return sum(len(ts) for ts, _ in self._rows.values())

    @property
    def put_count(self) -> int:
        """Total number of put operations ever applied (metrics)."""
        return self._put_count

    def __contains__(self, row: RowKey) -> bool:
        return row in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def load(self, items: Iterable[Tuple[RowKey, int, Any]]) -> None:
        """Bulk-load (row, timestamp, value) triples (initial table load)."""
        for row, ts, value in items:
            self.put(row, ts, value)
