"""Transactional YCSB: the paper's benchmark workloads (§6.1).

The paper modified YCSB to issue multi-row transactions and defined:

* **Read-only** transactions — all operations are reads;
* **Complex** transactions — 50 % reads, 50 % writes;
* each transaction touches ``n`` rows, ``n`` uniform in ``[0, 20]``;
* the **complex workload** is 100 % complex transactions (used to stress
  the status oracle, Fig. 5);
* the **mixed workload** is 50 % read-only / 50 % complex (used for the
  HBase experiments, Figs. 6–10).

:class:`WorkloadGenerator` produces :class:`TransactionSpec` values — the
pure *description* of a transaction (which rows to read/write) — which
the executors in :mod:`repro.bench` and :mod:`repro.sim` then run against
a real transaction manager or the simulated cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.workload.distributions import (
    KeyDistribution,
    LatestDistribution,
    make_distribution,
)

# §6.1: "Each transaction operates on n rows, where n is a uniform random
# number between 0 and 20."
DEFAULT_MAX_ROWS_PER_TXN = 20
# §6: rows randomly selected out of 20M.
DEFAULT_KEYSPACE = 20_000_000


@dataclass(frozen=True)
class OperationSpec:
    """One operation within a transaction spec."""

    kind: str  # 'r' or 'w'
    row: int


@dataclass(frozen=True)
class TransactionSpec:
    """A transaction to execute: ordered row operations.

    ``read_only`` distinguishes the paper's two transaction types.
    """

    ops: Tuple[OperationSpec, ...]
    read_only: bool

    @property
    def read_rows(self) -> Tuple[int, ...]:
        return tuple(op.row for op in self.ops if op.kind == "r")

    @property
    def write_rows(self) -> Tuple[int, ...]:
        return tuple(op.row for op in self.ops if op.kind == "w")

    @property
    def size(self) -> int:
        return len(self.ops)

    def commit_request(self, start_ts: int):
        """The oracle-facing view of this spec: a
        :class:`~repro.core.status_oracle.CommitRequest` carrying the
        spec's read/write footprints as frozensets."""
        from repro.core.status_oracle import CommitRequest

        return CommitRequest(
            start_ts,
            write_set=frozenset(self.write_rows),
            read_set=frozenset(self.read_rows),
        )


class WorkloadGenerator:
    """Generates the paper's read-only / complex / mixed workloads.

    Args:
        distribution: 'uniform' | 'zipfian' | 'zipfianLatest' (§6.4–6.5).
        keyspace: number of rows (paper: 20M).
        read_only_fraction: share of read-only transactions — 0.0 is the
            *complex workload*, 0.5 the *mixed workload*.
        max_rows: upper bound of the per-transaction row count (paper: 20).
        seed: RNG seed; every stream derived from it is deterministic.
    """

    def __init__(
        self,
        distribution: str = "uniform",
        keyspace: int = DEFAULT_KEYSPACE,
        read_only_fraction: float = 0.0,
        max_rows: int = DEFAULT_MAX_ROWS_PER_TXN,
        seed: Optional[int] = None,
        zetan: Optional[float] = None,
    ) -> None:
        if not 0.0 <= read_only_fraction <= 1.0:
            raise ValueError("read_only_fraction must be within [0, 1]")
        if max_rows < 0:
            raise ValueError("max_rows must be >= 0")
        self.distribution_name = distribution
        self.keyspace = keyspace
        self.read_only_fraction = read_only_fraction
        self.max_rows = max_rows
        self._rng = random.Random(seed)
        key_seed = self._rng.randrange(2 ** 63)
        self._keys: KeyDistribution = make_distribution(
            distribution, keyspace, seed=key_seed, zetan=zetan
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def next_transaction(self) -> TransactionSpec:
        """Draw one transaction spec."""
        read_only = self._rng.random() < self.read_only_fraction
        n = self._rng.randint(0, self.max_rows)
        ops: List[OperationSpec] = []
        writes = 0
        for i in range(n):
            row = self._next_key()
            if read_only:
                kind = "r"
            else:
                # Complex transaction: 50% read / 50% write operations.
                kind = "r" if self._rng.random() < 0.5 else "w"
            if kind == "w":
                writes += 1
            ops.append(OperationSpec(kind, row))
        spec = TransactionSpec(tuple(ops), read_only=read_only or writes == 0)
        # zipfianLatest: writes move the insertion frontier forward, so
        # popularity follows the freshest data (§6.5).
        if isinstance(self._keys, LatestDistribution) and writes:
            self._keys.advance(writes)
        return spec

    def _next_key(self) -> int:
        return self._keys.next_key()

    def stream(self, count: int) -> Iterator[TransactionSpec]:
        """Yield ``count`` transaction specs."""
        for _ in range(count):
            yield self.next_transaction()

    def batch(self, count: int) -> List[TransactionSpec]:
        return list(self.stream(count))


def complex_workload(
    distribution: str = "uniform",
    keyspace: int = DEFAULT_KEYSPACE,
    seed: Optional[int] = None,
    zetan: Optional[float] = None,
) -> WorkloadGenerator:
    """The paper's *complex workload*: 100 % complex transactions (Fig. 5)."""
    return WorkloadGenerator(
        distribution=distribution,
        keyspace=keyspace,
        read_only_fraction=0.0,
        seed=seed,
        zetan=zetan,
    )


def mixed_workload(
    distribution: str = "uniform",
    keyspace: int = DEFAULT_KEYSPACE,
    seed: Optional[int] = None,
    zetan: Optional[float] = None,
) -> WorkloadGenerator:
    """The paper's *mixed workload*: 50 % read-only, 50 % complex (Figs. 6-10)."""
    return WorkloadGenerator(
        distribution=distribution,
        keyspace=keyspace,
        read_only_fraction=0.5,
        seed=seed,
        zetan=zetan,
    )
