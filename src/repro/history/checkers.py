"""Isolation-level admissibility: which histories can SI / WSI produce?

Section 3–4 of the paper reasons about which histories each isolation
level *allows*.  This module decides that mechanically, by replaying a
history against the corresponding status-oracle algorithm:

* each transaction's **start timestamp** is assigned at its first
  operation (position in the interleaving);
* at its ``c`` operation the transaction submits a commit request —
  Algorithm 1's check for SI (write set vs ``lastCommit``), Algorithm 2's
  for WSI (read set vs ``lastCommit``);
* a history is *allowed* if every transaction that commits in the history
  passes its check (the oracle never has to abort anything the history
  says committed).

This is exactly the sense in which the paper says, e.g., "Snapshot
isolation allows the following history" (H2) or "Write-snapshot isolation
prevents History 6".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.history.history import History


@dataclass
class AdmissibilityResult:
    """Outcome of replaying a history against an isolation level.

    Attributes:
        allowed: True if every committing transaction passes its check.
        first_rejected: the first transaction whose commit check fails.
        conflict_row: the row that triggered the rejection.
        conflicting_with: the committed transaction it conflicted with.
    """

    allowed: bool
    first_rejected: Optional[int] = None
    conflict_row: Optional[str] = None
    conflicting_with: Optional[int] = None

    def __bool__(self) -> bool:
        return self.allowed


def _replay(history: History, level: str) -> AdmissibilityResult:
    """Run the lastCommit algorithm over the history's interleaving."""
    start_pos: Dict[int, int] = {
        t: history.start_position(t) for t in history.transactions
    }
    # lastCommit: row -> (commit position, writer) — positions double as
    # timestamps since the interleaving is the timestamp order.
    last_commit: Dict[str, Tuple[int, int]] = {}
    for pos, op in enumerate(history.operations):
        if op.kind != "c":
            continue
        txn = op.txn
        write_set = history.write_set(txn)
        read_set = history.read_set(txn)
        if level == "si":
            check_rows = write_set
        elif level == "wsi":
            # §4.1 read-only optimization: empty write set -> no check.
            check_rows = read_set if write_set else frozenset()
        else:
            raise ValueError(f"unknown isolation level {level!r}")
        for row in sorted(check_rows):
            entry = last_commit.get(row)
            if entry is not None and entry[0] > start_pos[txn]:
                return AdmissibilityResult(
                    allowed=False,
                    first_rejected=txn,
                    conflict_row=row,
                    conflicting_with=entry[1],
                )
        for row in write_set:
            last_commit[row] = (pos, txn)
    return AdmissibilityResult(allowed=True)


def allowed_under_si(history: History) -> AdmissibilityResult:
    """Would a snapshot-isolation oracle accept this exact history?"""
    return _replay(history, "si")


def allowed_under_wsi(history: History) -> AdmissibilityResult:
    """Would a write-snapshot-isolation oracle accept this history?"""
    return _replay(history, "wsi")


def allowed_under(history: History, level: str) -> AdmissibilityResult:
    """Dispatch on 'si' / 'wsi'."""
    return _replay(history, level)


def classification(history: History) -> Dict[str, bool]:
    """Full classification of a history, used by the E8 experiment table.

    Returns {'serializable', 'si', 'wsi'} -> bool.
    """
    from repro.history.serializability import is_serializable

    return {
        "serializable": is_serializable(history),
        "si": allowed_under_si(history).allowed,
        "wsi": allowed_under_wsi(history).allowed,
    }
