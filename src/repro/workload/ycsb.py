"""The standard YCSB core workloads (A–F), transactionalized.

The paper benchmarks with a modified YCSB [11]; §6.1 defines its own
read-only / complex transaction types, which :mod:`repro.workload.generator`
implements.  For downstream users, this module additionally provides the
*standard* YCSB core workload presets, adapted the same way the paper
adapted YCSB — each logical operation becomes part of a multi-row
transaction of ``n ~ U[0, max_rows]`` operations:

========  =========================  ======================  ============
workload  operation mix              distribution            paper analog
========  =========================  ======================  ============
A         50 % read / 50 % update    zipfian                 "complex"
B         95 % read / 5 % update     zipfian                 —
C         100 % read                 zipfian                 "read-only"
D         95 % read / 5 % insert     latest                  Fig. 9/10 mix
E         95 % scan / 5 % insert     zipfian (scan starts)   §5.2 traffic
F         50 % read / 50 % RMW       zipfian                 —
========  =========================  ======================  ============

A *scan* op is expanded into ``scan_length`` consecutive row reads
(matching how the paper's status oracle sees search-condition reads:
"the rows that are actually read", §5); an *insert* writes a fresh row
above the load frontier; *read-modify-write* contributes the row to both
the read and the write set.

**Group-local mode** (``num_groups=g``): the keyspace is divided into
``g`` contiguous key groups and every transaction confines its whole
footprint to one group — the group of its first drawn key, so group
popularity follows the configured distribution.  This is the
tenant/user-affinity shape locality-aware sharding exploits: pin each
group to one partition
(:meth:`YCSBWorkload.group_directory` feeds
:class:`~repro.core.sharding.DirectorySharding`, or use
:class:`~repro.core.sharding.RangeSharding` — groups are contiguous)
and the workload's cross-partition fraction collapses to ~0 (benchmark
E21's second leg).  In grouped mode inserts and scans stay inside the
transaction's group (an insert rewrites a group-local row instead of
extending the frontier; scans clamp at the group edge), so locality is
exact by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.workload.distributions import KeyDistribution, LatestDistribution, make_distribution
from repro.workload.generator import OperationSpec, TransactionSpec

DEFAULT_SCAN_LENGTH = 16


@dataclass(frozen=True)
class YCSBMix:
    """Operation-type probabilities for one core workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name}: mix sums to {total}, not 1")


CORE_WORKLOADS: Dict[str, YCSBMix] = {
    "A": YCSBMix("A", read=0.5, update=0.5),
    "B": YCSBMix("B", read=0.95, update=0.05),
    "C": YCSBMix("C", read=1.0),
    "D": YCSBMix("D", read=0.95, insert=0.05, distribution="zipfianLatest"),
    "E": YCSBMix("E", scan=0.95, insert=0.05),
    "F": YCSBMix("F", read=0.5, rmw=0.5),
}


class YCSBWorkload:
    """Transaction-spec stream for one core workload preset.

    Args:
        name: 'A' … 'F'.
        keyspace: initially loaded row count (inserts go above it).
        max_rows: transaction size bound, ``n ~ U[0, max_rows]`` (§6.1).
        scan_length: rows per scan operation (workload E).
        seed: RNG seed for reproducibility.
        num_groups: ``0`` (default) draws keys over the whole keyspace;
            a positive count switches on group-local mode (see the
            module docstring) with ``num_groups`` contiguous key
            groups.
    """

    def __init__(
        self,
        name: str,
        keyspace: int = 1_000_000,
        max_rows: int = 20,
        scan_length: int = DEFAULT_SCAN_LENGTH,
        seed: Optional[int] = None,
        num_groups: int = 0,
    ) -> None:
        key = name.strip().upper()
        if key not in CORE_WORKLOADS:
            raise ValueError(
                f"unknown YCSB workload {name!r}; choose from "
                f"{sorted(CORE_WORKLOADS)}"
            )
        if num_groups < 0 or num_groups > keyspace:
            raise ValueError("num_groups must be in [0, keyspace]")
        self.mix = CORE_WORKLOADS[key]
        self.keyspace = keyspace
        self.max_rows = max_rows
        self.scan_length = scan_length
        self.num_groups = num_groups
        self._group_size = keyspace // num_groups if num_groups else 0
        self._rng = random.Random(seed)
        self._keys: KeyDistribution = make_distribution(
            self.mix.distribution, keyspace, seed=self._rng.randrange(2 ** 63)
        )
        self._insert_frontier = keyspace  # fresh rows start here

    # ------------------------------------------------------------------
    def _draw_kind(self) -> str:
        u = self._rng.random()
        mix = self.mix
        for kind, p in (
            ("read", mix.read),
            ("update", mix.update),
            ("insert", mix.insert),
            ("scan", mix.scan),
        ):
            if u < p:
                return kind
            u -= p
        return "rmw"

    # ------------------------------------------------------------------
    # group-local mode
    # ------------------------------------------------------------------
    def group_of(self, row: int) -> int:
        """The contiguous key group a loaded row belongs to."""
        if not self.num_groups:
            raise ValueError("workload has no key groups (num_groups=0)")
        return min(row // self._group_size, self.num_groups - 1)

    def group_rows(self, group: int) -> range:
        """The contiguous row range of one key group (the last group
        absorbs the keyspace remainder)."""
        lo = group * self._group_size
        hi = (
            self.keyspace
            if group == self.num_groups - 1
            else lo + self._group_size
        )
        return range(lo, hi)

    def group_directory(self, num_partitions: int) -> Dict[int, int]:
        """Affinity map for
        :class:`~repro.core.sharding.DirectorySharding`: every loaded
        row pinned to its group's partition (group ``g`` to partition
        ``g % num_partitions``), so each group's transactions become
        single-partition outright."""
        directory: Dict[int, int] = {}
        for group in range(self.num_groups):
            pid = group % num_partitions
            for row in self.group_rows(group):
                directory[row] = pid
        return directory

    def _next_grouped(self, n: int) -> TransactionSpec:
        """One transaction confined to a single key group: the group of
        the first distribution draw (group popularity follows the key
        distribution), every key folded into it."""
        ops: List[OperationSpec] = []
        if n:
            rows = self.group_rows(self.group_of(self._keys.next_key()))
            lo, span = rows.start, len(rows)
            for _ in range(n):
                kind = self._draw_kind()
                if kind == "scan":
                    start = lo + self._keys.next_key() % span
                    for offset in range(self.scan_length):
                        row = start + offset
                        if row >= rows.stop:
                            break
                        ops.append(OperationSpec("r", row))
                    continue
                row = lo + self._keys.next_key() % span
                if kind == "read":
                    ops.append(OperationSpec("r", row))
                elif kind in ("update", "insert"):
                    # grouped inserts rewrite a group-local row rather
                    # than extend the global frontier (module docstring)
                    ops.append(OperationSpec("w", row))
                else:  # rmw: the row enters both sets
                    ops.append(OperationSpec("r", row))
                    ops.append(OperationSpec("w", row))
        writes = any(op.kind == "w" for op in ops)
        return TransactionSpec(tuple(ops), read_only=not writes)

    def next_transaction(self) -> TransactionSpec:
        n = self._rng.randint(0, self.max_rows)
        if self.num_groups:
            return self._next_grouped(n)
        ops: List[OperationSpec] = []
        inserts = 0
        for _ in range(n):
            kind = self._draw_kind()
            if kind == "read":
                ops.append(OperationSpec("r", self._keys.next_key()))
            elif kind == "update":
                ops.append(OperationSpec("w", self._keys.next_key()))
            elif kind == "insert":
                ops.append(OperationSpec("w", self._insert_frontier))
                self._insert_frontier += 1
                inserts += 1
            elif kind == "scan":
                start = self._keys.next_key()
                for offset in range(self.scan_length):
                    row = start + offset
                    if row < self._insert_frontier:
                        ops.append(OperationSpec("r", row))
            else:  # rmw: the row enters both sets
                row = self._keys.next_key()
                ops.append(OperationSpec("r", row))
                ops.append(OperationSpec("w", row))
        if inserts and isinstance(self._keys, LatestDistribution):
            self._keys.advance(inserts)
        writes = any(op.kind == "w" for op in ops)
        return TransactionSpec(tuple(ops), read_only=not writes)

    def stream(self, count: int) -> Iterator[TransactionSpec]:
        for _ in range(count):
            yield self.next_transaction()

    def batch(self, count: int) -> List[TransactionSpec]:
        return list(self.stream(count))

    @property
    def name(self) -> str:
        return self.mix.name


def ycsb(name: str, **kwargs) -> YCSBWorkload:
    """Shorthand constructor: ``ycsb('A', keyspace=10_000, seed=1)``."""
    return YCSBWorkload(name, **kwargs)
