"""RegionServer: one data server hosting a set of regions.

In the paper's testbed HBase "splits groups of consecutive rows of a table
into multiple regions, and each region is maintained by a single data
server" (§6).  A RegionServer here owns one :class:`MVCCStore` holding all
the cells of its regions, plus the counters the cluster simulator samples
(get/put counts, cache behaviour).

The 100 GB >> 3 GB-heap configuration of the paper means most random reads
miss the block cache and hit disk; we model that with a simple LRU block
cache over row blocks so the zipfian experiments (§6.5) naturally get the
higher cache-hit rate the paper observes ("random reads are most likely to
be serviced from the data already loaded into data servers").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, Optional

from repro.core.sharding import ShardingPolicy, stable_hash
from repro.mvcc.store import MVCCStore
from repro.mvcc.version import Version

RowKey = Hashable

# Rows per cache "block": HBase reads whole HFile blocks (~64 KB); with
# ~1 KB rows a block holds on the order of 64 rows.
DEFAULT_ROWS_PER_BLOCK = 64


class BlockCache:
    """LRU cache of row-block ids, used to classify reads hot vs cold.

    Block placement uses the process-independent
    :func:`~repro.core.sharding.stable_hash` (integer rows map to
    themselves, so consecutive rows share a block — HBase's
    consecutive-row regions — and hit rates are reproducible across
    processes regardless of ``PYTHONHASHSEED``); pass ``hash_fn=`` for
    a different placement, or ``sharding=`` to share one
    :class:`~repro.core.sharding.ShardingPolicy` with the partitioned
    oracle (the cache derives block ids from the policy's
    ``placement_hash``, so e.g. range-sharded deployments keep
    consecutive rows in one block).
    """

    def __init__(
        self,
        capacity_blocks: int,
        rows_per_block: int = DEFAULT_ROWS_PER_BLOCK,
        hash_fn: Optional[Callable[[RowKey], int]] = None,
        sharding: Optional[ShardingPolicy] = None,
    ) -> None:
        if capacity_blocks < 0:
            raise ValueError("capacity_blocks must be >= 0")
        if hash_fn is not None and sharding is not None:
            raise ValueError("pass hash_fn= or sharding=, not both")
        self._capacity = capacity_blocks
        self._rows_per_block = rows_per_block
        if sharding is not None:
            self._hash = sharding.placement_hash
        else:
            self._hash = hash_fn or stable_hash
        self._blocks: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def block_of(self, row: RowKey) -> int:
        return self._hash(row) // self._rows_per_block

    def touch(self, row: RowKey) -> bool:
        """Record an access; return True on cache hit, False on miss."""
        if self._capacity == 0:
            self.misses += 1
            return False
        block = self.block_of(row)
        if block in self._blocks:
            self._blocks.move_to_end(block)
            self.hits += 1
            return True
        self._blocks[block] = None
        if len(self._blocks) > self._capacity:
            self._blocks.popitem(last=False)
        self.misses += 1
        return False

    def warm(self, row: RowKey) -> None:
        """Insert a row's block without counting a hit or miss.

        Models a write landing in the memstore: subsequent reads of that
        row are served from memory.
        """
        if self._capacity == 0:
            return
        block = self.block_of(row)
        if block in self._blocks:
            self._blocks.move_to_end(block)
            return
        self._blocks[block] = None
        if len(self._blocks) > self._capacity:
            self._blocks.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RegionServer:
    """One data server: versioned storage plus access accounting."""

    def __init__(
        self,
        server_id: int,
        cache_capacity_blocks: int = 0,
    ) -> None:
        self.server_id = server_id
        self.store = MVCCStore()
        self.cache = BlockCache(cache_capacity_blocks)
        self.get_count = 0
        self.put_count = 0
        #: whether the most recent get() hit the block cache — sampled by
        #: the simulator to pick the hot vs cold read latency.
        self.last_access_hit = False

    # ------------------------------------------------------------------
    # data path (same protocol as MVCCStore, plus accounting)
    # ------------------------------------------------------------------
    def put(self, row: RowKey, timestamp: int, value: Any) -> None:
        self.put_count += 1
        self.store.put(row, timestamp, value)

    def get_versions(
        self, row: RowKey, max_timestamp: Optional[int] = None
    ) -> Iterator[Version]:
        self.get_count += 1
        self.last_access_hit = self.cache.touch(row)
        return self.store.get_versions(row, max_timestamp)

    def delete_version(self, row: RowKey, timestamp: int) -> bool:
        return self.store.delete_version(row, timestamp)

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    @property
    def request_count(self) -> int:
        return self.get_count + self.put_count

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RegionServer(#{self.server_id}, rows={self.store.row_count}, "
            f"gets={self.get_count}, puts={self.put_count})"
        )
