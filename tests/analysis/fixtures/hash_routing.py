"""Fixture for the ``no-builtin-hash`` pass.

Not collected by pytest (no ``test_`` prefix) and outside ``src/``, so
``make lint`` never sees it; ``tests/analysis/test_lint_passes.py``
lints it explicitly and asserts the ``# EXPECT:`` lines.
"""


def route(row, num_partitions):
    return hash(row) % num_partitions  # EXPECT: no-builtin-hash


def salted_bucket(key):
    bucket = hash(key) & 0xFF  # EXPECT: no-builtin-hash
    return bucket


class Key:
    def __init__(self, raw):
        self.raw = raw

    def __hash__(self):
        return hash(self.raw)  # exempt: __hash__ implementations may delegate

    def __eq__(self, other):
        return isinstance(other, Key) and other.raw == self.raw


def reviewed(row):
    return hash(row)  # lint: skip=no-builtin-hash -- fixture suppression
