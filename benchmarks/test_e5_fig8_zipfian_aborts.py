"""E5 — Figure 8: abort rate vs throughput, zipfian distribution.

Paper: "The abort rate linearly increases with the increase of
throughput, up to 20% in write-snapshot isolation.  Although the abort
rate in write-snapshot isolation is slightly higher than in snapshot
isolation, the difference is negligible."
"""

import pytest

from repro.bench import abort_rate_chart, format_table, monotonic_increasing
from repro.sim.cluster_sim import sweep_cluster

CLIENTS = [5, 10, 20, 40, 80, 160, 320, 640]


def run_both():
    si = sweep_cluster("si", "zipfian", client_counts=CLIENTS, measure=8.0)
    wsi = sweep_cluster("wsi", "zipfian", client_counts=CLIENTS, measure=8.0)
    return si, wsi


@pytest.mark.figure("fig8")
def test_e5_fig8_zipfian_abort_rate(benchmark, print_header):
    si, wsi = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_header("E5 — Figure 8: abort rate with zipfian distribution")
    rows = [
        (
            a.num_clients,
            f"{a.throughput_tps:.0f}",
            f"{100 * a.abort_rate:.1f}%",
            f"{b.throughput_tps:.0f}",
            f"{100 * b.abort_rate:.1f}%",
        )
        for a, b in zip(si, wsi)
    ]
    print(
        format_table(
            ["clients", "SI TPS", "SI aborts", "WSI TPS", "WSI aborts"],
            rows,
            title="abort rate vs throughput (paper: linear growth up to ~20% WSI)",
        )
    )
    print()
    print(abort_rate_chart(
        "Figure 8 (reproduced): abort rate, zipfian",
        {
            "WSI": [(r.throughput_tps, 100 * r.abort_rate) for r in wsi],
            "SI": [(r.throughput_tps, 100 * r.abort_rate) for r in si],
        },
    ))
    wsi_max_abort = max(r.abort_rate for r in wsi)
    si_max_abort = max(r.abort_rate for r in si)
    print(
        f"\nmax abort rate: WSI {100 * wsi_max_abort:.1f}% "
        f"(paper ~20%), SI {100 * si_max_abort:.1f}%"
    )

    # Shape: abort rate grows with throughput for both levels.
    assert monotonic_increasing([r.abort_rate for r in wsi], slack=0.10)
    assert monotonic_increasing([r.abort_rate for r in si], slack=0.10)
    # Peak abort rate in the paper's ballpark (up to ~20%, we allow 10-35%).
    assert 0.10 < wsi_max_abort < 0.35
    # WSI slightly higher than SI at saturation, but "negligible"
    # difference: within 6 percentage points.
    assert wsi[-1].abort_rate >= si[-1].abort_rate - 0.01
    assert abs(wsi[-1].abort_rate - si[-1].abort_rate) < 0.06
