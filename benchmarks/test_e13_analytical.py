"""E13 (extension) — §5.2's analytical-traffic challenges, measured.

The paper names two challenges for analytical transactions in the
lock-free scheme and sketches a mitigation for each:

1. read-set size → submit compact row *ranges* (over-approximation);
2. "the larger the read set, the higher is the probability of a
   read-write conflict and thus the higher is the abort rate" → for
   statistics not read by OLTP, skip the commit check entirely.

This benchmark sweeps the analytical scan width against a fixed OLTP
background and measures (a) the compactness win of ranges over row ids,
(b) the abort-vs-width curve, (c) the skip-check escape hatch.
"""

import random

import pytest

from repro.bench import format_table, monotonic_increasing
from repro.core.analytics import (
    AnalyticalCommitRequest,
    AnalyticalOracle,
    RangeReadSet,
    RowRange,
)
from repro.core.status_oracle import CommitRequest

KEYSPACE = 100_000
OLTP_PER_SCAN = 40  # OLTP commits interleaved under each analytical txn
TRIALS = 60


def run_width_sweep(skip_check: bool):
    widths = [100, 1_000, 10_000, 50_000, 100_000]
    rng = random.Random(61)
    rows = []
    for width in widths:
        oracle = AnalyticalOracle()
        aborted = 0
        for _ in range(TRIALS):
            scan_start = rng.randrange(KEYSPACE - width + 1)
            scan_ts = oracle.begin()
            # concurrent OLTP traffic lands while the scan "runs"
            for _ in range(OLTP_PER_SCAN):
                ts = oracle.begin()
                oracle.commit(
                    CommitRequest(
                        ts, write_set=frozenset({rng.randrange(KEYSPACE)})
                    )
                )
            result = oracle.commit_analytical(
                AnalyticalCommitRequest(
                    scan_ts,
                    (RowRange(scan_start, scan_start + width),),
                    skip_check=skip_check,
                )
            )
            if not result.committed:
                aborted += 1
        rows.append((width, aborted / TRIALS))
    return rows


@pytest.mark.figure("analytical")
def test_e13_analytical_read_set_challenges(benchmark, print_header):
    checked, skipped = benchmark.pedantic(
        lambda: (run_width_sweep(False), run_width_sweep(True)),
        rounds=1,
        iterations=1,
    )
    print_header("E13 — §5.2 analytical traffic: scan width vs abort rate")
    print(
        format_table(
            ["scan width (rows)", "abort rate (checked)", "abort rate (skip-check)"],
            [
                (w, f"{100 * a:.0f}%", f"{100 * b:.0f}%")
                for (w, a), (_, b) in zip(checked, skipped)
            ],
            title=f"{OLTP_PER_SCAN} concurrent OLTP writes per scan, "
            f"{KEYSPACE}-row keyspace",
        )
    )

    # Challenge 2, quantified: abort probability grows with scan width...
    assert monotonic_increasing([a for _, a in checked], slack=0.15)
    assert checked[-1][1] > checked[0][1]
    # ...approaching certainty for near-full-table scans under write load.
    assert checked[-1][1] > 0.9
    # Mitigation 2: skip-check analytical commits never abort.
    assert all(rate == 0.0 for _, rate in skipped)

    # Mitigation 1: compactness — a million scanned rows is ONE range.
    rs = RangeReadSet()
    for row in range(0, 1_000_000):
        rs.add_row(row)
    assert rs.range_count == 1
    assert rs.covered_rows == 1_000_000
    print(
        f"\ncompact read set: 1,000,000 scanned rows -> {rs.range_count} range "
        f"({rs})"
    )
