"""Tests for the Cahill-style serializable-SI comparator."""

import pytest

from repro.core import TransactionManager
from repro.core.errors import ConflictAbort
from repro.core.status_oracle import CommitRequest
from repro.mvcc.store import MVCCStore
from repro.ssi import SerializableSIOracle


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


class TestKeepsSISemantics:
    def test_ww_conflict_still_aborts(self):
        oracle = SerializableSIOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"})).committed
        result = oracle.commit(req(t2, writes={"x"}))
        assert not result.committed
        assert result.reason == "ww-conflict"

    def test_serial_transactions_commit(self):
        oracle = SerializableSIOracle()
        for _ in range(5):
            ts = oracle.begin()
            assert oracle.commit(req(ts, writes={"x"}, reads={"x"})).committed

    def test_read_only_fast_path(self):
        oracle = SerializableSIOracle()
        reader = oracle.begin()
        writer = oracle.begin()
        assert oracle.commit(req(writer, writes={"x"})).committed
        assert oracle.commit(req(reader)).committed  # empty sets


class TestPivotDetection:
    def test_write_skew_prevented(self):
        # H2: r1{x,y} w1{x} / r2{x,y} w2{y}, concurrent: second committer
        # becomes a pivot (in-edge from t1's read of y, out-edge to t1's
        # write of x) and must abort.
        oracle = SerializableSIOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"}, reads={"x", "y"})).committed
        result = oracle.commit(req(t2, writes={"y"}, reads={"x", "y"}))
        assert not result.committed
        assert result.reason.startswith("ssi-pivot")
        assert oracle.pivot_aborts == 1

    def test_h1_crossover_prevented(self):
        oracle = SerializableSIOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"y"}, reads={"x"})).committed
        result = oracle.commit(req(t2, writes={"x"}, reads={"y"}))
        assert not result.committed

    def test_single_edge_is_allowed(self):
        # One antidependency alone is not dangerous.
        oracle = SerializableSIOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"})).committed
        # t2 read x (out-edge to nobody concurrent-committed... in-edge
        # only): reads z, writes w — edge t2 -> t1 via nothing; construct
        # a clean single-edge case: t2 writes a row t1 never touched and
        # reads a row t1 wrote.
        result = oracle.commit(req(t2, writes={"w"}, reads={"x"}))
        assert result.committed  # SI allows it; no pivot exists

    def test_false_positive_vs_wsi(self):
        # SSI's conservatism: a three-txn chain can abort under SSI even
        # when... at minimum, document a case WSI allows but SSI aborts:
        # H6-like: t2 commits inside t1's lifetime writing t1's read row
        # gives t1 an out-edge; t1 also has an in-edge if a concurrent
        # committed txn read what t1 writes.
        oracle = SerializableSIOracle()
        t1 = oracle.begin()
        t2 = oracle.begin()
        t3 = oracle.begin()
        assert oracle.commit(req(t2, writes={"x"}, reads={"z"})).committed
        assert oracle.commit(req(t3, writes={"q"}, reads={"y"})).committed
        # t1 reads x (overwritten by concurrent t2 -> out-edge) and
        # writes y (read by concurrent committed t3 -> in-edge): pivot.
        result = oracle.commit(req(t1, writes={"y"}, reads={"x"}))
        assert not result.committed
        assert result.reason == "ssi-pivot-self"

    def test_protects_committed_neighbour(self):
        # Committing T must not turn an already-committed txn into a
        # pivot; T aborts instead.
        oracle = SerializableSIOracle()
        t1 = oracle.begin()
        t2 = oracle.begin()
        t3 = oracle.begin()
        # t2 commits with an out-edge to t1's future write? Build:
        # t2 reads a, writes b. t3 reads b... sequence:
        assert oracle.commit(req(t2, writes={"b"}, reads={"a"})).committed
        # t3 gives t2 an in-edge: t3 reads... no - t2 gains in-edge if a
        # concurrent committed txn READ what t2 WROTE (b).
        assert oracle.commit(req(t3, writes={"c"}, reads={"b"})).committed
        # now t2 has in-edge (from t3). If t1 commits writing 'a' (which
        # t2 read), t2 would gain an out-edge -> pivot: t1 must abort.
        result = oracle.commit(req(t1, writes={"a"}))
        assert not result.committed
        assert result.reason == "ssi-pivot-neighbour"


class TestSerializabilityProperty:
    def test_random_executions_serializable(self):
        """SSI executions, recorded as histories, are serializable."""
        import random

        from repro.core.errors import AbortException
        from repro.history.history import History, Operation
        from repro.history.serializability import is_serializable

        for trial in range(30):
            rng = random.Random(trial)
            oracle = SerializableSIOracle()
            manager = TransactionManager(oracle, MVCCStore())
            open_txns = []
            trace = []
            for _ in range(6):
                txn = manager.begin()
                ops = [
                    (rng.choice("rw"), rng.choice("abc")) for _ in range(3)
                ]
                open_txns.append((txn, ops))
            while open_txns:
                idx = rng.randrange(len(open_txns))
                txn, ops = open_txns[idx]
                try:
                    if ops:
                        kind, item = ops.pop(0)
                        if kind == "r":
                            txn.read(item)
                        else:
                            txn.write(item, txn.start_ts)
                        trace.append(Operation(kind, txn.start_ts, item))
                        continue
                    txn.commit()
                    trace.append(Operation("c", txn.start_ts))
                except AbortException:
                    trace.append(Operation("a", txn.start_ts))
                open_txns.pop(idx)
            history = History(trace)
            committed = set(history.committed_transactions())
            pruned = History([op for op in trace if op.txn in committed])
            if pruned.operations:
                assert is_serializable(pruned), f"trial {trial}: {pruned}"


class TestPruning:
    def test_footprints_pruned_when_no_concurrency(self):
        oracle = SerializableSIOracle()
        for i in range(10):
            ts = oracle.begin()
            oracle.commit(req(ts, writes={f"r{i}"}, reads={f"r{i}"}))
        # no active transactions remain: the window should be empty
        assert oracle.retained_footprints == 0

    def test_footprints_retained_for_active_snapshot(self):
        oracle = SerializableSIOracle()
        pinned = oracle.begin()  # stays active
        for i in range(5):
            ts = oracle.begin()
            oracle.commit(req(ts, writes={f"r{i}"}))
        assert oracle.retained_footprints == 5
