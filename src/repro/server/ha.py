"""The high-availability serving tier: replicated group-commit frontends.

Appendix A sketches the failure story for the status oracle: "the same
status oracle after recovery, or another fresh instance of the status
oracle could still recreate the memory state from the write-ahead log
and continue servicing the commit requests."  :mod:`repro.coord.failover`
provides that for the bare oracle; this module lifts it to the *serving
tier* — the group-commit :class:`~repro.server.frontend.OracleFrontend`
clients actually talk to — and closes the client-visible gaps a bare
oracle failover leaves open:

* **Warm standby** — every candidate host runs a standby oracle that
  tails the shared WAL (:class:`~repro.wal.bookkeeper.WALTail`), so
  takeover applies only the un-polled suffix: O(delta), not a full
  replay (benchmark E22's failover leg).
* **Request survival** — a client's in-flight request must not strand
  when the leader dies mid-batch.  :class:`ReplicatedFrontend` hands
  out futures that resolve only at *durability* (the WAL sync for the
  batch that carried the decision); a request whose decision never
  became durable is transparently resubmitted against the next leader
  — with its **original start timestamp**, so no timestamp is ever
  reused — under a bounded-exponential
  :class:`~repro.server.retry.RetryPolicy`.
* **No double-decide** — a decision that *did* reach a ledger quorum
  settles its future from the WAL-sync listener and leaves the retry
  set before any failover; only never-durable requests are retried, and
  the new leader recovers exactly the durable prefix, so a retry can
  never contradict persisted state.
* **Admission control** — ``max_queue_depth`` flows through to each
  promoted frontend, shedding over-capacity load with a typed
  :class:`~repro.core.errors.Overloaded` instead of unbounded queueing
  (E22's overload leg).

Durability-time settlement is deliberately *later* than the plain
frontend's flush-time settlement: a single-host deployment equates
"decided" with "will survive" because there is nothing else to take
over, but a replicated tier must not acknowledge a decision the next
leader might not recover.  The cost is one WAL sync of latency; the
drive loop (:meth:`ReplicatedFrontend.flush`) bounds it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import OracleClosed, Overloaded
from repro.core.status_oracle import CommitRequest, CommitResult
from repro.coord.failover import CatchUpCadence, OracleHost
from repro.core.engine import default_engine_kind
from repro.coord.zookeeper import ZooKeeper
from repro.server.frontend import CommitFuture, FlushedBatch, OracleFrontend
from repro.server.retry import RetryPolicy
from repro.wal.bookkeeper import GROUP_COMMIT_RECORD, BookKeeperWAL


class HAFuture(CommitFuture):
    """A commit/abort future that resolves at *durability*.

    The plain :class:`CommitFuture` resolves when its batch flushes —
    correct for one host, premature for a replicated tier (a flushed
    but un-synced decision dies with the leader).  An ``HAFuture``
    stays pending across any number of failovers and retries of the
    underlying request; it resolves when the decision's WAL record is
    on a ledger quorum (or with an error once the request is known
    never to resolve: a decision error, or the retry policy spent).
    The outcome surface is identical to :class:`CommitFuture`.
    """

    #: How many times the request was resubmitted after a leader crash.
    retries = 0

    def add_done_callback(self, fn: Callable[["CommitFuture"], None]) -> None:
        # No batch backref: this future outlives any one batch.
        if self._done:
            fn(self)
            return
        if self._cbs is None:
            self._cbs = [fn]
        else:
            self._cbs.append(fn)

    def _settle_from(self, inner: CommitFuture) -> None:
        """Adopt the (durable) outcome of the request's inner future."""
        self._committed = inner._committed
        self._commit_ts = inner._commit_ts
        self._reason = inner._reason
        self._row = inner._row
        self._error = inner._error
        self._done = True  # lint: skip=future-discipline -- blessed settle
        self._fire_callbacks()

    def _settle_error(self, exc: BaseException) -> None:
        self._error = exc
        self._done = True  # lint: skip=future-discipline -- blessed settle
        self._fire_callbacks()


class _InFlight:
    """One not-yet-durable client request tracked across failovers."""

    __slots__ = ("kind", "request", "future", "inner", "attempts", "durable")

    def __init__(self, kind: str, request: Any, future: HAFuture) -> None:
        self.kind = kind  # "commit" | "abort"
        self.request = request  # CommitRequest, or start_ts for aborts
        self.future = future
        #: The current submission's CommitFuture.  None while a submit
        #: call is in flight — a WAL sync can fire *inside* submit (the
        #: count-trigger flush filling a 1 KB entry), before the caller
        #: has the inner future; _settle then defers via ``durable``.
        self.inner: Optional[CommitFuture] = None
        self.attempts = 0
        self.durable = False


class FrontendHost(OracleHost):
    """An :class:`OracleHost` that serves a group-commit frontend.

    Promotion (:meth:`OracleHost._become_active`) recovers the oracle —
    warm catch-up or cold replay — and the :meth:`_on_active` hook then
    builds an :class:`OracleFrontend` over it with this deployment's
    batching/admission configuration.  ``on_promoted`` lets the owning
    :class:`ReplicatedFrontend` re-attach its listeners and retry loop
    to each successive leader.
    """

    def __init__(
        self,
        host_id: int,
        zookeeper: ZooKeeper,
        wal: BookKeeperWAL,
        level: str = "wsi",
        warm: bool = True,
        engine: str = "oracle",
        frontend_config: Optional[Dict[str, Any]] = None,
        on_promoted: Optional[Callable[["FrontendHost"], None]] = None,
    ) -> None:
        # Set before super().__init__: the first host constructed wins
        # the election *inside* the super call, which runs _on_active.
        self.frontend: Optional[OracleFrontend] = None
        self._frontend_config = dict(frontend_config or {})
        self._on_promoted = on_promoted
        super().__init__(
            host_id, zookeeper, wal, level=level, warm=warm, engine=engine
        )

    def _on_active(self) -> None:
        self.frontend = OracleFrontend(
            self.oracle, wal=self._wal, **self._frontend_config
        )
        if self._on_promoted is not None:
            self._on_promoted(self)

    def crash(self) -> None:
        if self.frontend is not None:
            self.frontend = None
        super().crash()


class ReplicatedFrontend:
    """N warm-standby frontend candidates behind one client surface.

    Duck-types the :class:`OracleFrontend` client surface that
    :class:`~repro.server.session.ClientSession` uses (``closed``,
    ``begin``, ``begin_many``, ``submit_commit``, ``submit_abort``), so
    sessions run unchanged over a replicated tier.  Differences from a
    single frontend:

    * futures are :class:`HAFuture` — resolved at WAL durability, not
      at batch flush;
    * :meth:`kill_active` crashes the leader: the un-synced WAL buffer
      is lost, the open batch's futures fail *inside the dead host*,
      the next candidate is promoted (O(delta) when ``warm``), and
      every not-yet-durable client request is resubmitted against the
      new leader with its original start timestamp;
    * the deployment drive loop is :meth:`flush` (force batch + WAL
      out, settling durable futures) plus :meth:`standby_catch_up`
      (advance the standbys' WAL tails).

    Args:
        num_hosts: candidate frontends (the leader serves; the rest
            stand by).
        level: conflict-detection level for the oracle engine
            ("si"/"wsi"; ignored by the non-oracle engines).
        engine: which commit protocol each host runs —
            :func:`~repro.core.engine.make_engine` kind ("oracle",
            "percolator", "ssi"; ``None`` resolves through
            ``REPRO_ENGINE`` — the ``make check`` axis).  The whole
            tier is protocol-agnostic: hosts recover through the
            engine's own WAL hooks.
        warm: run standbys with WAL tails (True, the point of the
            tier); False forces cold full-replay takeovers — the E22
            baseline.
        catch_up_interval: when set, drive warm-standby catch-up from
            ``clock`` — once the interval elapses, the next submit or
            :meth:`flush` syncs the WAL and polls every standby tail
            (the PR-6 commit-count modulus, replaced by a time policy;
            see :class:`~repro.coord.failover.CatchUpCadence`).
        clock: time source for the cadence (wall clock by default;
            pass the simulator's clock in a simulation).
        retry_policy: pacing/bounds for post-failover resubmission; a
            request still not durable after ``max_attempts`` submissions
            fails its future with the last crash error.
        sleep: optional callable receiving each retry backoff delay
            (injected time; accounting-only when omitted).
        max_batch / flush_interval / begin_lease / max_queue_depth:
            forwarded to each promoted :class:`OracleFrontend`.
    """

    def __init__(
        self,
        num_hosts: int = 3,
        level: str = "wsi",
        warm: bool = True,
        engine: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
        max_batch: Optional[int] = None,
        flush_interval: Optional[float] = None,
        begin_lease: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        catch_up_interval: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        if engine is None:
            engine = default_engine_kind()
        self.zookeeper = ZooKeeper()
        self.wal = BookKeeperWAL()
        self._cadence: Optional[CatchUpCadence] = None
        if catch_up_interval is not None:
            import time as _time

            self._cadence = CatchUpCadence(
                catch_up_interval, clock or _time.monotonic
            )
        self._retry_policy = retry_policy or RetryPolicy()
        self._sleep = sleep
        self._inflight: Dict[int, _InFlight] = {}
        self._closed = False
        self.failovers = 0
        #: Requests resubmitted after a leader crash (sum over crashes).
        self.retried_requests = 0
        #: Requests whose retry budget ran out (futures failed).
        self.failed_after_retries = 0
        #: Injected-time seconds of retry backoff accrued.
        self.backoff_seconds = 0.0
        frontend_config: Dict[str, Any] = {}
        if max_batch is not None:
            frontend_config["max_batch"] = max_batch
        if flush_interval is not None:
            frontend_config["flush_interval"] = flush_interval
        if begin_lease is not None:
            frontend_config["begin_lease"] = begin_lease
        if max_queue_depth is not None:
            frontend_config["max_queue_depth"] = max_queue_depth
        # Durability listener first: from the very first batch, records
        # reaching a ledger quorum settle their futures (and leave the
        # retry set — the no-double-decide invariant).
        self.wal.on_sync(self._on_durable)
        self.hosts: List[FrontendHost] = [
            FrontendHost(
                i,
                self.zookeeper,
                self.wal,
                level=level,
                warm=warm,
                engine=engine,
                frontend_config=frontend_config,
                on_promoted=self._on_promoted,
            )
            for i in range(num_hosts)
        ]

    # ------------------------------------------------------------------
    # leader plumbing
    # ------------------------------------------------------------------
    def _on_promoted(self, host: FrontendHost) -> None:
        # Decision errors are permanent (retrying re-raises the same
        # error), so they settle at flush, not at durability — they
        # never reach the WAL.
        host.frontend.on_flush(self._on_flush_errors)

    def active_host(self) -> FrontendHost:
        for host in self.hosts:
            if host.is_active:
                return host
        raise OracleClosed("no active frontend (all hosts down?)")

    @property
    def active_frontend(self) -> OracleFrontend:
        return self.active_host().frontend

    def standby_catch_up(self) -> int:
        """Poll every standby's WAL tail once; returns records applied."""
        return sum(host.catch_up() for host in self.hosts)

    # ------------------------------------------------------------------
    # client surface (ClientSession-compatible)
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def begin(self) -> int:
        if self._closed:
            raise OracleClosed("replicated frontend is closed")
        return self.active_frontend.begin()

    def begin_many(self, n: int) -> List[int]:
        if self._closed:
            raise OracleClosed("replicated frontend is closed")
        return self.active_frontend.begin_many(n)

    def submit_commit(self, request: CommitRequest) -> HAFuture:
        """Queue a commit request; the future resolves at durability.

        Read-only requests (§4.1 condition 3) resolve immediately, as
        on the plain frontend — they touch no durable state, so there
        is nothing a failover could lose.  ``Overloaded`` rejections
        propagate to the caller (the session's retry policy backs off).
        """
        if self._closed:
            raise OracleClosed("replicated frontend is closed")
        future = HAFuture(request.start_ts)
        entry = _InFlight("commit", request, future)
        self._submit_entry(entry, self.active_frontend)
        return future

    def submit_abort(self, start_ts: int) -> HAFuture:
        """Queue a client abort; the future resolves at durability."""
        if self._closed:
            raise OracleClosed("replicated frontend is closed")
        future = HAFuture(start_ts)
        entry = _InFlight("abort", start_ts, future)
        self._submit_entry(entry, self.active_frontend)
        return future

    def _submit_entry(self, entry: _InFlight, frontend: OracleFrontend) -> None:
        """One (re)submission of an entry against the given frontend.

        The entry is registered in the retry set *before* the inner
        submit with ``inner=None``: the submit itself can flush the
        batch (count trigger) and even sync the WAL (1 KB entry), in
        which case :meth:`_settle` fires mid-call — it finds the entry,
        flags ``durable``, and the settle completes here once the inner
        future is in hand.  Exceptions (``Overloaded``, a closed
        frontend) deregister the entry and propagate.
        """
        start_ts = entry.future.start_ts
        entry.inner = None
        entry.durable = False
        entry.attempts += 1
        self._inflight[start_ts] = entry
        try:
            if entry.kind == "commit":
                inner = frontend.submit_commit(entry.request)
            else:
                inner = frontend.submit_abort(entry.request)
        except BaseException:
            self._inflight.pop(start_ts, None)
            raise
        if entry.kind == "commit" and inner.batch is None:
            # Read-only fast path: decided at submit, nothing durable
            # (and nothing a failover could lose) — resolve immediately.
            self._inflight.pop(start_ts, None)
            entry.future._settle_from(inner)
            return
        entry.inner = inner
        if entry.durable:
            # The WAL sync raced the submit (already deregistered).
            entry.future._settle_from(inner)
        self._maybe_catch_up()

    def _maybe_catch_up(self) -> None:
        """Clock-driven warm-standby catch-up (see ``catch_up_interval``)."""
        if self._cadence is not None and self._cadence.due():
            self.wal.flush()
            self.standby_catch_up()

    def session(self, name: Optional[str] = None, begin_lease: int = 1,
                retry_policy: Optional[RetryPolicy] = None,
                sleep: Optional[Callable[[float], None]] = None):
        from repro.server.session import ClientSession

        return ClientSession(
            self, name=name, begin_lease=begin_lease,
            retry_policy=retry_policy, sleep=sleep,
        )

    @property
    def inflight_count(self) -> int:
        """Client requests not yet durable (the failover retry set)."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    # drive loop
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force the open batch and the WAL out.

        After this returns, every request submitted before the call has
        settled its future (durable outcome or decision error) — the
        replicated tier's group-commit barrier.
        """
        host = self.active_host()
        if host.frontend is not None:
            host.frontend.flush()
        self.wal.flush()
        self._maybe_catch_up()

    def close(self) -> None:
        """Flush everything out and stop accepting requests."""
        if self._closed:
            return
        host = None
        try:
            host = self.active_host()
        except OracleClosed:
            pass
        if host is not None and host.frontend is not None:
            host.frontend.close()
            self.wal.flush()
        self._closed = True

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def _on_durable(self, records) -> None:
        """WAL-sync listener: settle every request a synced batch
        decided.  The inner future is already resolved (its batch
        flushed before the record could sync), so settlement is a copy."""
        for record in records:
            if record.kind != GROUP_COMMIT_RECORD:
                continue
            commits, aborts = record.payload
            for start_ts, _commit_ts, _rows in commits:
                self._settle(start_ts)
            for start_ts in aborts:
                self._settle(start_ts)

    def _settle(self, start_ts: int) -> None:
        entry = self._inflight.pop(start_ts, None)
        if entry is None:
            return
        if entry.inner is None:
            # Sync fired inside the submit call itself; the submit path
            # completes the settle once it has the inner future.
            entry.durable = True
            return
        entry.future._settle_from(entry.inner)

    def _on_flush_errors(self, cell: FlushedBatch) -> None:
        for start_ts, exc in cell.errors:
            entry = self._inflight.pop(start_ts, None)
            if entry is not None:
                entry.future._settle_error(exc)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def kill_active(self) -> FrontendHost:
        """Crash the leader; promote the next host; retry the in-flight.

        The crash sequence mirrors a real host loss: the WAL's buffered
        (never-acked) records die first, then the host's open batch
        fails inside the dead frontend, then the session expires and
        the election promotes the next candidate (warm: O(delta)
        catch-up).  Finally every client request that never became
        durable — crashed open-batch requests *and* flushed-but-unsynced
        ones alike — is resubmitted against the new leader with its
        original start timestamp, paced by the retry policy.
        """
        victim = self.active_host()
        crash_exc = OracleClosed(
            f"frontend host {victim.host_id} crashed mid-batch"
        )
        self.wal.drop_pending()
        if victim.frontend is not None:
            victim.frontend.fail_pending(crash_exc)
        victim.crash()
        self.failovers += 1
        self._retry_inflight(crash_exc)
        return victim

    def _retry_inflight(self, crash_exc: BaseException) -> None:
        if not self._inflight:
            return
        try:
            frontend = self.active_frontend
        except OracleClosed:
            # No survivor: every outstanding request fails permanently.
            for entry in list(self._inflight.values()):
                self._inflight.pop(entry.future.start_ts, None)
                entry.future._settle_error(crash_exc)
                self.failed_after_retries += 1
            return
        policy = self._retry_policy
        # Snapshot the retry set: resubmission re-registers each entry
        # in turn, and a resubmit's own count-flush can sync the WAL and
        # settle earlier entries mid-loop (each record only ever names
        # requests whose entry already holds its *new* inner future).
        for entry in list(self._inflight.values()):
            if entry.attempts >= policy.max_attempts:
                self._inflight.pop(entry.future.start_ts, None)
                entry.future._settle_error(crash_exc)
                self.failed_after_retries += 1
                continue
            delay = policy.delay_for(entry.attempts)
            self.backoff_seconds += delay
            if self._sleep is not None:
                self._sleep(delay)
            self.retried_requests += 1
            entry.future.retries += 1
            try:
                self._submit_entry(entry, frontend)
            except Overloaded as exc:
                # The new leader shed the retry: surface it rather than
                # silently dropping the request from the retry set.
                entry.future._settle_error(exc)
                self.failed_after_retries += 1


class _ActiveCommitStatus:
    """Commit-status source that queries the *current* leader per lookup.

    §2.2 lists three homes for the start->commit mapping; this is the
    "stored in the status oracle" one — readers pay a (simulated) round
    trip per visibility check but are never stale.  It is the right
    source for a replicated deployment: a client-side replica
    (:class:`~repro.core.commit_table.ClientCommitView`) subscribes to
    one oracle's broadcast stream and goes silent at failover, making
    every post-takeover commit invisible; this source re-routes to the
    new leader's recovered table automatically.
    """

    def __init__(self, replicated: "ReplicatedFrontend") -> None:
        self._replicated = replicated

    def _table(self):
        return self._replicated.active_host().oracle.commit_table

    # CommitStatusSource protocol -------------------------------------
    def commit_timestamp(self, start_ts: int) -> Optional[int]:
        return self._table().commit_timestamp(start_ts)

    def is_aborted(self, start_ts: int) -> bool:
        return self._table().is_aborted(start_ts)

    def is_committed(self, start_ts: int) -> bool:
        return self._table().is_committed(start_ts)


class ReplicatedOracleFacade:
    """A synchronous oracle-shaped view over a :class:`ReplicatedFrontend`.

    :class:`~repro.core.transaction.TransactionManager` (and anything
    else written against the sequential
    :class:`~repro.core.engine.CommitEngine` call surface) expects
    ``begin()`` / ``commit(request) -> CommitResult`` / ``abort(start)``
    to return decisions inline.  The replicated tier instead hands out
    futures that settle at WAL durability.  The facade bridges the two:
    each ``commit``/``abort`` submits, drives :meth:`ReplicatedFrontend.
    flush` until the future settles, and unwraps the result — so every
    decision it returns is already durable on the ledger quorum.

    The price is batching: a single synchronous caller serializes on its
    own requests, so batches only form across *concurrent* facade users
    (e.g. several :class:`~repro.core.transaction.Transaction` objects
    committed by interleaved application threads in the real system).
    The facade is the convenience path ``create_system(replicated=N)``
    exposes; latency-sensitive clients should speak futures directly.
    """

    def __init__(self, replicated: "ReplicatedFrontend") -> None:
        self._replicated = replicated
        #: Failover-proof commit-status source for snapshot readers —
        #: pass as ``TransactionManager(..., commit_source=...)``.
        self.commit_status = _ActiveCommitStatus(replicated)

    # -- passthroughs the transaction layer reads --------------------
    @property
    def replicated(self) -> "ReplicatedFrontend":
        return self._replicated

    def _active_oracle(self):
        return self._replicated.active_host().oracle

    @property
    def level(self) -> str:
        return self._active_oracle().level

    @property
    def naive_read_only(self) -> bool:
        return getattr(self._active_oracle(), "naive_read_only", False)

    @property
    def stats(self):
        return self._active_oracle().stats

    @property
    def commit_table(self):
        return self._active_oracle().commit_table

    @property
    def timestamp_oracle(self):
        return self._active_oracle().timestamp_oracle

    @property
    def closed(self) -> bool:
        return self._replicated.closed

    # -- the sequential call surface ---------------------------------
    def begin(self) -> int:
        return self._replicated.begin()

    def commit(self, request: CommitRequest) -> CommitResult:
        future = self._replicated.submit_commit(request)
        if not future.done:
            self._replicated.flush()
        return future.result()

    def abort(self, start_ts: int) -> None:
        future = self._replicated.submit_abort(start_ts)
        if not future.done:
            self._replicated.flush()
        if future.error is not None:
            raise future.error

    def close(self) -> None:
        self._replicated.close()
