"""Execution harness: run workload specs against a real transaction stack.

The discrete-event simulator measures *time*; this harness measures
*logic*: it executes :class:`~repro.workload.generator.TransactionSpec`
streams against a real :class:`~repro.core.transaction.TransactionManager`
(over an :class:`~repro.mvcc.store.MVCCStore` or
:class:`~repro.hbase.cluster.HBaseCluster`), interleaving the operations
of many concurrently-open transactions so genuine conflicts arise.  It
is what the concurrency experiments (E9–E11), the integration tests, and
the property-based tests drive.

The interleaving is a random merge of per-transaction operation streams,
seeded and reproducible — a logical concurrency model, not wall-clock
threading, so results are deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import AbortException
from repro.core.transaction import Transaction, TransactionManager
from repro.workload.generator import TransactionSpec


@dataclass
class HarnessResult:
    """Aggregate outcome of an interleaved execution."""

    committed: int = 0
    aborted: int = 0
    read_only_committed: int = 0
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    operations: int = 0

    @property
    def total(self) -> int:
        return self.committed + self.aborted

    @property
    def abort_rate(self) -> float:
        return self.aborted / self.total if self.total else 0.0

    def record_abort(self, reason: str) -> None:
        self.aborted += 1
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1

    def merge(self, other: "HarnessResult") -> "HarnessResult":
        merged = HarnessResult(
            committed=self.committed + other.committed,
            aborted=self.aborted + other.aborted,
            read_only_committed=self.read_only_committed + other.read_only_committed,
            operations=self.operations + other.operations,
        )
        for reasons in (self.abort_reasons, other.abort_reasons):
            for reason, count in reasons.items():
                merged.abort_reasons[reason] = (
                    merged.abort_reasons.get(reason, 0) + count
                )
        return merged


class _OpenTxn:
    """A transaction mid-flight in the interleaver."""

    __slots__ = ("txn", "spec", "next_op", "value_counter")

    def __init__(self, txn: Transaction, spec: TransactionSpec) -> None:
        self.txn = txn
        self.spec = spec
        self.next_op = 0


def run_interleaved(
    manager: TransactionManager,
    specs: Sequence[TransactionSpec],
    concurrency: int = 8,
    seed: int = 0,
    value_of: Optional[Callable[[int, int], object]] = None,
) -> HarnessResult:
    """Execute ``specs`` with up to ``concurrency`` open transactions.

    At each step a random open transaction advances by one operation;
    when its operations are exhausted it commits.  New transactions are
    opened as slots free up.  ``value_of(txn_start_ts, row)`` supplies
    written values (defaults to the start timestamp, which makes
    writer identity recoverable from the store).

    Aborts (conflicts) are counted, not retried — matching how the
    paper's YCSB client counts abort rate.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    rng = random.Random(seed)
    result = HarnessResult()
    pending = list(specs)
    pending.reverse()  # pop from the end
    open_txns: List[_OpenTxn] = []

    def open_next() -> None:
        if pending:
            spec = pending.pop()
            open_txns.append(_OpenTxn(manager.begin(), spec))

    while len(open_txns) < concurrency and pending:
        open_next()

    while open_txns:
        slot = rng.randrange(len(open_txns))
        state = open_txns[slot]
        try:
            if state.next_op < len(state.spec.ops):
                op = state.spec.ops[state.next_op]
                state.next_op += 1
                if op.kind == "r":
                    state.txn.read(op.row)
                else:
                    value = (
                        value_of(state.txn.start_ts, op.row)
                        if value_of is not None
                        else state.txn.start_ts
                    )
                    state.txn.write(op.row, value)
                result.operations += 1
                continue
            # all operations done: commit
            state.txn.commit()
            result.committed += 1
            if state.spec.read_only:
                result.read_only_committed += 1
        except AbortException as exc:
            result.record_abort(exc.reason)
        else:
            open_txns.pop(slot)
            open_next()
            continue
        # aborted path: remove and refill
        open_txns.pop(slot)
        open_next()
    return result


def run_sequential(
    manager: TransactionManager,
    specs: Sequence[TransactionSpec],
    value_of: Optional[Callable[[int, int], object]] = None,
) -> HarnessResult:
    """Execute specs one at a time (no concurrency -> no conflicts).

    Baseline for tests: under *any* isolation level a serial execution
    must commit everything.
    """
    return run_interleaved(manager, specs, concurrency=1, value_of=value_of)
