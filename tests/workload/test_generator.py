"""Unit tests for the transactional YCSB workload generator (§6.1)."""

import pytest

from repro.workload.generator import (
    TransactionSpec,
    WorkloadGenerator,
    complex_workload,
    mixed_workload,
)


class TestTransactionSpec:
    def test_row_views(self):
        from repro.workload.generator import OperationSpec

        spec = TransactionSpec(
            (OperationSpec("r", 1), OperationSpec("w", 2), OperationSpec("r", 3)),
            read_only=False,
        )
        assert spec.read_rows == (1, 3)
        assert spec.write_rows == (2,)
        assert spec.size == 3


class TestSizeDistribution:
    def test_row_count_in_paper_range(self):
        gen = WorkloadGenerator(keyspace=1000, seed=1)
        sizes = [gen.next_transaction().size for _ in range(2000)]
        assert min(sizes) == 0
        assert max(sizes) == 20  # n uniform in [0, 20]

    def test_mean_around_ten(self):
        gen = WorkloadGenerator(keyspace=1000, seed=2)
        sizes = [gen.next_transaction().size for _ in range(5000)]
        assert 9.0 < sum(sizes) / len(sizes) < 11.0

    def test_custom_max_rows(self):
        gen = WorkloadGenerator(keyspace=1000, max_rows=5, seed=3)
        assert all(gen.next_transaction().size <= 5 for _ in range(500))


class TestComplexWorkload:
    def test_all_transactions_complex(self):
        gen = complex_workload(keyspace=1000, seed=4)
        specs = gen.batch(1000)
        # a complex txn has ~50/50 reads and writes; allow the empty /
        # all-read edge cases that the uniform size draw produces
        ops = [op for spec in specs for op in spec.ops]
        writes = sum(1 for op in ops if op.kind == "w")
        assert 0.45 < writes / len(ops) < 0.55

    def test_keys_within_keyspace(self):
        gen = complex_workload(keyspace=500, seed=5)
        for spec in gen.stream(200):
            assert all(0 <= op.row < 500 for op in spec.ops)


class TestMixedWorkload:
    def test_half_read_only(self):
        gen = mixed_workload(keyspace=1000, seed=6)
        specs = gen.batch(4000)
        ro = sum(1 for s in specs if s.read_only)
        assert 0.4 < ro / len(specs) < 0.6

    def test_read_only_specs_have_no_writes(self):
        gen = mixed_workload(keyspace=1000, seed=7)
        for spec in gen.stream(500):
            if spec.read_only:
                assert spec.write_rows == ()

    def test_empty_complex_txn_counts_as_read_only(self):
        # a "complex" draw of n=0 rows has an empty write set: by the
        # paper's definition (§4.1) that transaction is read-only.
        gen = mixed_workload(keyspace=1000, seed=8)
        for spec in gen.stream(2000):
            if not spec.write_rows:
                assert spec.read_only


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = mixed_workload(keyspace=1000, seed=42).batch(100)
        b = mixed_workload(keyspace=1000, seed=42).batch(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = mixed_workload(keyspace=1000, seed=1).batch(100)
        b = mixed_workload(keyspace=1000, seed=2).batch(100)
        assert a != b


class TestDistributionIntegration:
    @pytest.mark.parametrize("dist", ["uniform", "zipfian", "zipfianLatest"])
    def test_all_paper_distributions_work(self, dist):
        gen = WorkloadGenerator(distribution=dist, keyspace=10_000, seed=9)
        specs = gen.batch(100)
        assert len(specs) == 100

    def test_latest_frontier_advances_with_writes(self):
        gen = WorkloadGenerator(
            distribution="zipfianLatest", keyspace=10_000, seed=10
        )
        frontier_before = gen._keys.frontier
        total_writes = 0
        for spec in gen.stream(100):
            total_writes += len(spec.write_rows)
        assert gen._keys.frontier == (frontier_before + total_writes) % 10_000

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(read_only_fraction=1.5)

    def test_invalid_max_rows(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(max_rows=-1)
