"""History algebra and serializability theory (paper §3–4, executable).

Public surface:

* :func:`parse_history`, :class:`History`, :class:`Operation` and the
  ``read``/``write``/``commit``/``abort`` shorthand constructors.
* :func:`is_serializable` (multiversion, the paper's notion),
  :func:`is_conflict_serializable` (single-version, for contrast),
  :func:`serialize_by_commit_order` (the constructive Lemma 1–2 mapping),
  :func:`equivalent` (output equivalence).
* :func:`allowed_under_si` / :func:`allowed_under_wsi` — which histories
  each oracle admits.
* anomaly detectors: write skew, lost update, dirty/fuzzy read, phantom.
* the paper's seven histories: ``H1`` … ``H7`` and ``PAPER_CLAIMS``.
"""

from repro.history.anomalies import (
    AnomalyWitness,
    check_constraint_violation,
    find_dirty_reads,
    find_fuzzy_reads,
    find_lost_updates,
    find_write_skew,
    has_phantom,
)
from repro.history.checkers import (
    AdmissibilityResult,
    allowed_under,
    allowed_under_si,
    allowed_under_wsi,
    classification,
)
from repro.history.history import (
    History,
    Operation,
    abort,
    commit,
    parse_history,
    read,
    write,
)
from repro.history.paper_histories import (
    ALL_HISTORIES,
    H1,
    H2,
    H3,
    H4,
    H5,
    H6,
    H7,
    PAPER_CLAIMS,
)
from repro.history.serializability import (
    equivalent,
    equivalent_serial_order,
    is_conflict_serializable,
    is_serializable,
    mvsg,
    precedence_graph,
    serialize_by_commit_order,
)

__all__ = [
    "History",
    "Operation",
    "parse_history",
    "read",
    "write",
    "commit",
    "abort",
    "is_serializable",
    "is_conflict_serializable",
    "mvsg",
    "precedence_graph",
    "equivalent",
    "equivalent_serial_order",
    "serialize_by_commit_order",
    "allowed_under",
    "allowed_under_si",
    "allowed_under_wsi",
    "classification",
    "AdmissibilityResult",
    "AnomalyWitness",
    "find_write_skew",
    "find_lost_updates",
    "find_dirty_reads",
    "find_fuzzy_reads",
    "has_phantom",
    "check_constraint_violation",
    "H1",
    "H2",
    "H3",
    "H4",
    "H5",
    "H6",
    "H7",
    "ALL_HISTORIES",
    "PAPER_CLAIMS",
]
