"""Tests for the engine-driven group-commit simulation."""

import pytest

from repro.sim.frontend_sim import GroupCommitSim, sweep_group_commit


def small_sim(**kwargs):
    defaults = dict(
        level="wsi",
        batch_size=32,
        num_clients=2,
        outstanding_per_client=20,
        warmup=0.05,
        measure=0.15,
        seed=7,
    )
    defaults.update(kwargs)
    return GroupCommitSim(**defaults)


class TestEngineDrivenFlush:
    def test_heavy_load_flushes_by_count(self):
        result = small_sim().run()
        assert result.flushes_by_count > 0
        assert result.avg_batch == pytest.approx(32, abs=5)
        assert result.throughput_tps > 0

    def test_light_load_flushes_by_timer(self):
        # 2 outstanding transactions can never fill a 128-batch: only the
        # engine-scheduled 5 ms interval trigger can flush.
        result = small_sim(
            batch_size=128, num_clients=1, outstanding_per_client=2
        ).run()
        assert result.flushes_by_count == 0
        assert result.flushes_by_timer > 0
        # latency is dominated by the flush interval wait
        assert 2.0 < result.avg_latency_ms < 15.0

    def test_all_acks_wait_for_batch_durability(self):
        sim = small_sim()
        result = sim.run()
        # every measured latency includes at least the WAL write leg
        assert result.commits + result.aborts == len(sim._latencies)
        assert min(sim._latencies) > 0

    def test_deterministic_under_seed(self):
        a = small_sim(seed=42).run()
        b = small_sim(seed=42).run()
        assert a == b


class TestBatchingThroughput:
    def test_batching_beats_unbatched_in_simulated_time(self):
        results = sweep_group_commit(
            "wsi",
            batch_sizes=[1, 32],
            num_clients=4,
            outstanding_per_client=25,
            measure=0.25,
        )
        unbatched, batched = results
        assert batched.throughput_tps > 1.5 * unbatched.throughput_tps

    def test_decisions_match_oracle_counters(self):
        sim = small_sim(warmup=0.0)
        result = sim.run()
        stats = sim.oracle.stats
        # counters include the final (possibly unmeasured) in-flight
        # requests; measured outcomes can never exceed them
        assert result.commits <= stats.commits
        assert result.aborts <= stats.aborts
        assert sim.frontend.stats.avg_batch_size() > 1


class TestSimFailover:
    def test_leader_crash_mid_run_retries_and_continues(self):
        result = small_sim(
            num_clients=4,
            warmup=0.02,
            measure=0.2,
            failover_at=0.08,
        ).run()
        assert result.failovers == 1
        assert result.crash_retries > 0  # in-flight requests were re-driven
        assert result.throughput_tps > 0
        assert result.commits > 0

    def test_failover_deterministic_under_seed(self):
        kwargs = dict(num_clients=3, warmup=0.02, measure=0.15, failover_at=0.06)
        a = small_sim(**kwargs).run()
        b = small_sim(**kwargs).run()
        assert a.throughput_tps == b.throughput_tps
        assert a.crash_retries == b.crash_retries

    def test_no_failover_means_no_retries(self):
        result = small_sim(measure=0.1).run()
        assert result.failovers == 0
        assert result.crash_retries == 0


class TestSimAdmissionControl:
    def test_queue_depth_bounded_under_overload(self):
        result = small_sim(
            num_clients=8,
            outstanding_per_client=64,
            max_queue_depth=64,
            warmup=0.02,
            measure=0.1,
        ).run()
        assert 0 < result.max_inflight_seen <= 64
        assert result.overload_rejections > 0
        assert result.overload_backoffs > 0
        assert result.throughput_tps > 0

    def test_open_loop_offered_load_sheds_when_saturated(self):
        # Offer far beyond capacity with a tight bound: the closed
        # retry budget must eventually shed rather than queue forever.
        result = small_sim(
            num_clients=1,  # ignored in open-loop mode
            offered_tps=400_000,
            max_queue_depth=32,
            warmup=0.02,
            measure=0.08,
        ).run()
        assert result.offered_tps == 400_000
        assert result.max_inflight_seen <= 32
        assert result.shed_requests > 0
        assert result.throughput_tps > 0

    def test_unbounded_run_reports_no_admission_activity(self):
        result = small_sim(measure=0.1).run()
        assert result.overload_rejections == 0
        assert result.shed_requests == 0


class TestEngineParameter:
    """``engine=`` swaps the commit protocol under the simulated
    serving stack (the CommitEngine refactor's sim leg)."""

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            GroupCommitSim(engine="spanner")

    def test_partitions_are_oracle_only(self):
        with pytest.raises(ValueError, match="oracle-only"):
            GroupCommitSim(engine="percolator", num_partitions=4)

    def test_latency_pricing_follows_the_protocol(self):
        # Percolator's ww check loads write sets only (SI-shaped cost);
        # SSI loads both footprints (WSI-shaped); the oracle prices at
        # its own level.
        assert GroupCommitSim(engine="percolator")._pricing_level == "si"
        assert GroupCommitSim(engine="ssi")._pricing_level == "wsi"
        assert GroupCommitSim(engine="oracle", level="si")._pricing_level == "si"

    @pytest.mark.parametrize("engine", ["oracle", "percolator", "ssi"])
    def test_sim_runs_under_every_engine(self, engine):
        result = small_sim(engine=engine).run()
        assert result.throughput_tps > 0
        assert result.commits > 0
