"""Unit tests for the multi-version store."""

import pytest

from repro.mvcc.store import MVCCStore
from repro.mvcc.version import TOMBSTONE, Version


class TestPutGet:
    def test_put_and_get_exact(self):
        store = MVCCStore()
        store.put("row", 5, "value")
        version = store.get_exact("row", 5)
        assert version == Version(5, "value")

    def test_get_exact_missing(self):
        store = MVCCStore()
        assert store.get_exact("row", 5) is None
        store.put("row", 5, "x")
        assert store.get_exact("row", 6) is None

    def test_put_same_timestamp_overwrites(self):
        store = MVCCStore()
        store.put("row", 5, "first")
        store.put("row", 5, "second")
        assert store.get_exact("row", 5).value == "second"
        assert store.version_count == 1

    def test_out_of_order_puts_are_sorted(self):
        store = MVCCStore()
        store.put("row", 10, "c")
        store.put("row", 5, "a")
        store.put("row", 7, "b")
        versions = list(store.get_versions("row"))
        assert [v.timestamp for v in versions] == [10, 7, 5]


class TestVersionScan:
    def test_newest_first_below_bound(self):
        store = MVCCStore()
        for ts in (1, 3, 5, 7):
            store.put("r", ts, ts * 10)
        versions = list(store.get_versions("r", max_timestamp=5))
        assert [v.timestamp for v in versions] == [5, 3, 1]

    def test_bound_is_inclusive(self):
        store = MVCCStore()
        store.put("r", 5, "x")
        assert [v.timestamp for v in store.get_versions("r", 5)] == [5]

    def test_no_bound_returns_all(self):
        store = MVCCStore()
        for ts in range(1, 6):
            store.put("r", ts, ts)
        assert len(list(store.get_versions("r"))) == 5

    def test_missing_row_yields_nothing(self):
        store = MVCCStore()
        assert list(store.get_versions("nope")) == []

    def test_latest(self):
        store = MVCCStore()
        store.put("r", 1, "old")
        store.put("r", 9, "new")
        assert store.latest("r") == Version(9, "new")
        assert store.latest("other") is None


class TestDeletes:
    def test_tombstone_delete(self):
        store = MVCCStore()
        store.put("r", 1, "alive")
        store.delete("r", 5)
        versions = list(store.get_versions("r"))
        assert versions[0].is_tombstone
        assert versions[1].value == "alive"

    def test_delete_version_physical(self):
        store = MVCCStore()
        store.put("r", 1, "a")
        store.put("r", 2, "b")
        assert store.delete_version("r", 1)
        assert [v.timestamp for v in store.get_versions("r")] == [2]

    def test_delete_version_missing(self):
        store = MVCCStore()
        assert not store.delete_version("r", 1)
        store.put("r", 2, "x")
        assert not store.delete_version("r", 1)

    def test_delete_last_version_removes_row(self):
        store = MVCCStore()
        store.put("r", 1, "x")
        store.delete_version("r", 1)
        assert "r" not in store
        assert store.row_count == 0


class TestScans:
    def test_scan_rows(self):
        store = MVCCStore()
        for row in ("a", "b", "c"):
            store.put(row, 1, row)
        assert sorted(store.scan_rows()) == ["a", "b", "c"]

    def test_scan_range(self):
        store = MVCCStore()
        for row in (1, 3, 5, 7, 9):
            store.put(row, 1, row)
        assert list(store.scan_range(3, 8)) == [3, 5, 7]

    def test_scan_range_empty(self):
        store = MVCCStore()
        store.put(1, 1, "x")
        assert list(store.scan_range(5, 9)) == []


class TestCompaction:
    def test_compact_keeps_visible_boundary_version(self):
        store = MVCCStore()
        for ts in (1, 3, 5, 7):
            store.put("r", ts, ts)
        removed = store.compact("r", keep_after=5)
        assert removed == 2  # versions 1 and 3 dropped
        # version 5 kept: a snapshot read at 6 still sees value 5
        remaining = [v.timestamp for v in store.get_versions("r")]
        assert remaining == [7, 5]

    def test_compact_noop_when_nothing_older(self):
        store = MVCCStore()
        store.put("r", 5, "x")
        assert store.compact("r", keep_after=5) == 0
        assert store.compact("missing", keep_after=5) == 0


class TestStatsAndBulk:
    def test_counters(self):
        store = MVCCStore()
        store.put("a", 1, "x")
        store.put("a", 2, "y")
        store.put("b", 1, "z")
        assert store.row_count == 2
        assert store.version_count == 3
        assert store.put_count == 3
        assert len(store) == 2

    def test_bulk_load(self):
        store = MVCCStore()
        store.load((f"row{i}", 1, i) for i in range(100))
        assert store.row_count == 100
        assert store.get_exact("row42", 1).value == 42
