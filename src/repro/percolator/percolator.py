"""Percolator-style lock-based snapshot isolation (paper §2.1, [24]).

The paper's baseline for *lock-based* SI.  Percolator adds two columns to
every row:

* the **lock** column — low-granularity locks used by a client-run 2PC;
* the **write** column — commit records mapping a commit timestamp to the
  start timestamp whose data version it exposes.

Protocol, per §2.1:

1. *Prewrite* (first 2PC phase): for every written row, abort if another
   transaction committed it after our start timestamp (write-write
   conflict) or if it is locked; otherwise write the data at our start
   timestamp and acquire the lock.  One row is designated the **primary**;
   all other locks point at it.
2. *Commit* (second phase): obtain the commit timestamp, write the commit
   record on the primary (the atomic commit point), remove its lock, then
   roll the secondaries forward.

When a transaction encounters a lock it may **wait**, **abort itself**,
or **force-abort the holder** — the three policies §2.1 lists — and this
implementation supports all three via :class:`LockPolicy`.

The known weakness the paper critiques is also reproduced faithfully:
locks left by a failed or slow client block (or force cleanup work on)
everyone else, whereas the lock-free oracle has no such state.  A client
can :meth:`PercolatorTransaction.crash` mid-2PC and later transactions
must resolve the leftovers through the primary-lock protocol, rolling the
transaction forward if the primary committed and back otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.errors import (
    AbortException,
    ConflictAbort,
    InvalidTransactionState,
    LockConflict,
)
from repro.core.timestamps import TimestampOracle
from repro.mvcc.store import MVCCStore
from repro.mvcc.version import TOMBSTONE

RowKey = Hashable


class LockPolicy(enum.Enum):
    """What a writer does when it finds a row locked (§2.1: wait, abort,
    or force the holder's abort)."""

    ABORT_SELF = "abort"
    WAIT = "wait"
    FORCE_ABORT_HOLDER = "force"


@dataclass
class Lock:
    """An entry in the lock column."""

    holder_start_ts: int
    primary_row: RowKey
    is_primary: bool


@dataclass(frozen=True)
class WriteRecord:
    """An entry in the write column: commit_ts -> data version pointer."""

    commit_ts: int
    start_ts: int


class PercolatorStore:
    """Data + lock + write columns for one logical table."""

    def __init__(self) -> None:
        self.data = MVCCStore()  # versions keyed by start_ts
        self._locks: Dict[RowKey, Lock] = {}
        self._writes: Dict[RowKey, List[WriteRecord]] = {}  # sorted by commit_ts

    # ------------------------------------------------------------------
    # bulk access (the batched engine's hook)
    # ------------------------------------------------------------------
    @property
    def lock_column(self) -> Dict[RowKey, Lock]:
        """The live lock column, keyed by row.

        The supported surface for bulk readers (the batched
        :class:`~repro.percolator.engine.PercolatorEngine` path binds
        ``.get``/``.keys().isdisjoint`` locally) — mutate only through
        :meth:`acquire_lock`/:meth:`release_lock`.
        """
        return self._locks

    @property
    def write_column(self) -> Dict[RowKey, List[WriteRecord]]:
        """The live write column: per-row records sorted by commit_ts.

        Bulk-read hook like :data:`lock_column`; WAL recovery also
        appends through it (records arrive already in commit order).
        """
        return self._writes

    # ------------------------------------------------------------------
    # lock column
    # ------------------------------------------------------------------
    def lock_of(self, row: RowKey) -> Optional[Lock]:
        return self._locks.get(row)

    def acquire_lock(self, row: RowKey, lock: Lock) -> None:
        if row in self._locks:
            raise LockConflict(row, self._locks[row].holder_start_ts)
        self._locks[row] = lock

    def release_lock(self, row: RowKey, holder_start_ts: int) -> bool:
        lock = self._locks.get(row)
        if lock is not None and lock.holder_start_ts == holder_start_ts:
            del self._locks[row]
            return True
        return False

    def locked_rows(self) -> Set[RowKey]:
        return set(self._locks)

    # ------------------------------------------------------------------
    # write column
    # ------------------------------------------------------------------
    def latest_write_before(self, row: RowKey, ts: int) -> Optional[WriteRecord]:
        """Newest commit record with commit_ts < ts (snapshot visibility)."""
        records = self._writes.get(row)
        if not records:
            return None
        # records are few per row in practice; linear scan from the end.
        for record in reversed(records):
            if record.commit_ts < ts:
                return record
        return None

    def latest_commit_ts(self, row: RowKey) -> Optional[int]:
        records = self._writes.get(row)
        return records[-1].commit_ts if records else None

    def add_write_record(self, row: RowKey, record: WriteRecord) -> None:
        records = self._writes.setdefault(row, [])
        if records and record.commit_ts <= records[-1].commit_ts:
            raise ValueError("write records must be appended in commit order")
        records.append(record)

    def write_record_for_start(self, row: RowKey, start_ts: int) -> Optional[WriteRecord]:
        for record in self._writes.get(row, []):
            if record.start_ts == start_ts:
                return record
        return None


class PercoState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"
    CRASHED = "crashed"  # client died; locks may linger


class PercolatorTransaction:
    """One client-driven 2PC transaction."""

    def __init__(
        self,
        manager: "PercolatorTransactionManager",
        start_ts: int,
        lock_policy: LockPolicy,
    ) -> None:
        self._manager = manager
        self.start_ts = start_ts
        self.commit_ts: Optional[int] = None
        self.state = PercoState.ACTIVE
        self._buffer: Dict[RowKey, Any] = {}
        self._lock_policy = lock_policy
        self.read_set: Set[RowKey] = set()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, row: RowKey, default: Any = None) -> Any:
        """Snapshot read through the write column.

        If the row carries a lock older than our snapshot we must resolve
        it first (the holder may have committed at a timestamp we should
        observe) — this is the read-blocking behaviour the paper critiques.
        """
        self._require_active()
        if row in self._buffer:
            value = self._buffer[row]
            self.read_set.add(row)
            return default if value is TOMBSTONE else value
        store = self._manager.store
        lock = store.lock_of(row)
        if lock is not None and lock.holder_start_ts < self.start_ts:
            self._manager.resolve_lock(row, lock)
        record = store.latest_write_before(row, self.start_ts)
        self.read_set.add(row)
        if record is None:
            return default
        version = store.data.get_exact(row, record.start_ts)
        if version is None or version.is_tombstone:
            return default
        return version.value

    # ------------------------------------------------------------------
    # writes (buffered until prewrite, like Percolator's client)
    # ------------------------------------------------------------------
    def write(self, row: RowKey, value: Any) -> None:
        self._require_active()
        self._buffer[row] = value

    def delete(self, row: RowKey) -> None:
        self._require_active()
        self._buffer[row] = TOMBSTONE

    @property
    def write_set(self) -> Set[RowKey]:
        return set(self._buffer)

    @property
    def is_read_only(self) -> bool:
        return not self._buffer

    # ------------------------------------------------------------------
    # 2PC
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Run both 2PC phases; returns the commit timestamp."""
        self._require_active()
        if not self._buffer:
            # Read-only: SI needs no commit record and cannot conflict.
            self.state = PercoState.COMMITTED
            self.commit_ts = self.start_ts
            return self.commit_ts
        rows = sorted(self._buffer, key=repr)  # deterministic primary choice
        primary = rows[0]
        self.prewrite(primary, rows)
        return self.finalize(primary, rows)

    def prewrite(self, primary: RowKey, rows: Optional[List[RowKey]] = None) -> None:
        """Phase 1: conflict checks, data writes, lock acquisition."""
        if rows is None:
            rows = sorted(self._buffer, key=repr)
        store = self._manager.store
        acquired: List[RowKey] = []
        try:
            for row in rows:
                self._check_ww_conflict(row)
                self._acquire_with_policy(row, primary)
                acquired.append(row)
                store.data.put(row, self.start_ts, self._buffer[row])
        except AbortException:
            for row in acquired:
                store.release_lock(row, self.start_ts)
                store.data.delete_version(row, self.start_ts)
            self.state = PercoState.ABORTED
            raise

    def finalize(self, primary: RowKey, rows: Optional[List[RowKey]] = None) -> int:
        """Phase 2: commit point on the primary, then roll secondaries."""
        if rows is None:
            rows = sorted(self._buffer, key=repr)
        store = self._manager.store
        commit_ts = self._manager.tso.next()
        # The commit *point*: write record + lock release on the primary.
        if store.lock_of(primary) is None or (
            store.lock_of(primary).holder_start_ts != self.start_ts
        ):
            # Someone force-aborted us between phases.
            self._rollback_rows(rows)
            self.state = PercoState.ABORTED
            raise ConflictAbort(self.start_ts, "force-aborted", primary)
        store.add_write_record(primary, WriteRecord(commit_ts, self.start_ts))
        store.release_lock(primary, self.start_ts)
        # Secondaries can be rolled forward lazily; do it eagerly here.
        for row in rows:
            if row == primary:
                continue
            store.add_write_record(row, WriteRecord(commit_ts, self.start_ts))
            store.release_lock(row, self.start_ts)
        self.state = PercoState.COMMITTED
        self.commit_ts = commit_ts
        return commit_ts

    def _check_ww_conflict(self, row: RowKey) -> None:
        latest = self._manager.store.latest_commit_ts(row)
        if latest is not None and latest > self.start_ts:
            self.state = PercoState.ABORTED
            raise ConflictAbort(self.start_ts, "ww-conflict", row)

    def _acquire_with_policy(self, row: RowKey, primary: RowKey) -> None:
        store = self._manager.store
        lock = Lock(self.start_ts, primary, is_primary=(row == primary))
        for _ in range(self._manager.max_lock_retries):
            existing = store.lock_of(row)
            if existing is None:
                store.acquire_lock(row, lock)
                return
            if self._lock_policy is LockPolicy.ABORT_SELF:
                raise ConflictAbort(self.start_ts, "lock-held", row)
            if self._lock_policy is LockPolicy.FORCE_ABORT_HOLDER:
                self._manager.force_abort(existing)
                continue
            # WAIT: in this synchronous model, waiting can only make
            # progress if the holder crashed (then resolution clears it);
            # otherwise treat an active holder like ABORT_SELF after
            # resolution fails to clear the lock.
            self._manager.resolve_lock(row, existing)
            if store.lock_of(row) is not None:
                raise ConflictAbort(self.start_ts, "lock-wait-timeout", row)
        raise ConflictAbort(self.start_ts, "lock-held", row)

    def _rollback_rows(self, rows: Iterable[RowKey]) -> None:
        store = self._manager.store
        for row in rows:
            store.release_lock(row, self.start_ts)
            store.data.delete_version(row, self.start_ts)

    def abort(self) -> None:
        self._require_active()
        self._rollback_rows(self._buffer)
        self.state = PercoState.ABORTED

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate the client dying right now, leaving any locks in place.

        If called between prewrite and finalize, the transaction's locks
        linger until another transaction resolves them — the exact
        recovery-stall scenario §2.1 criticizes.
        """
        self.state = PercoState.CRASHED
        self._manager.note_crashed(self.start_ts)

    def _require_active(self) -> None:
        if self.state is not PercoState.ACTIVE:
            raise InvalidTransactionState(
                f"percolator txn {self.start_ts} is {self.state.value}"
            )


class PercolatorTransactionManager:
    """Client factory plus the shared lock-resolution machinery."""

    def __init__(
        self,
        store: Optional[PercolatorStore] = None,
        tso: Optional[TimestampOracle] = None,
        lock_policy: LockPolicy = LockPolicy.ABORT_SELF,
        max_lock_retries: int = 3,
    ) -> None:
        self.store = store or PercolatorStore()
        self.tso = tso or TimestampOracle()
        self.lock_policy = lock_policy
        self.max_lock_retries = max_lock_retries
        self._crashed: Set[int] = set()
        self.resolution_count = 0

    def begin(self, lock_policy: Optional[LockPolicy] = None) -> PercolatorTransaction:
        return PercolatorTransaction(
            self,
            self.tso.next(),
            lock_policy or self.lock_policy,
        )

    def note_crashed(self, start_ts: int) -> None:
        self._crashed.add(start_ts)

    # ------------------------------------------------------------------
    # lock resolution (the primary-lock protocol)
    # ------------------------------------------------------------------
    def resolve_lock(self, row: RowKey, lock: Lock) -> None:
        """Resolve a dangling lock found by a reader or writer.

        Check the primary: if the primary's write record exists the txn
        committed and we roll the secondary forward; if the primary lock
        is gone without a record the txn aborted and we clean up; if the
        holder is known-crashed we roll it back.  An active (not crashed)
        holder keeps its locks.
        """
        self.resolution_count += 1
        holder = lock.holder_start_ts
        primary = lock.primary_row
        record = self.store.write_record_for_start(primary, holder)
        if record is not None:
            # Committed: roll this row forward.
            if self.store.write_record_for_start(row, holder) is None:
                self.store.add_write_record(row, WriteRecord(record.commit_ts, holder))
            self.store.release_lock(row, holder)
            return
        primary_lock = self.store.lock_of(primary)
        primary_gone = primary_lock is None or primary_lock.holder_start_ts != holder
        if primary_gone or holder in self._crashed:
            # Aborted (or dead client): roll back.
            self.store.release_lock(row, holder)
            self.store.data.delete_version(row, holder)
            if holder in self._crashed and not primary_gone:
                self.store.release_lock(primary, holder)
                self.store.data.delete_version(primary, holder)

    def force_abort(self, lock: Lock) -> None:
        """Forcefully clear another transaction's locks (FORCE policy)."""
        holder = lock.holder_start_ts
        primary = lock.primary_row
        # Kill the primary first so the holder can no longer commit.
        self.store.release_lock(primary, holder)
        self.store.data.delete_version(primary, holder)
        for locked_row in list(self.store.locked_rows()):
            existing = self.store.lock_of(locked_row)
            if existing is not None and existing.holder_start_ts == holder:
                self.store.release_lock(locked_row, holder)
                self.store.data.delete_version(locked_row, holder)
