"""The seven histories of the paper, as named constants.

Each constant is the exact history from §3–4 with the paper's claims
recorded in :data:`PAPER_CLAIMS`; the test suite and experiment E8 verify
every claim mechanically.

* **H1** — SI's non-serializable history (r/w crossover).
* **H2** — write skew violating the ``x + y > 0`` constraint.
* **H3** — lost update (prevented by SI and by WSI).
* **H4** — blind write: *not* a lost update, serializable, yet prevented
  by SI's write-write check (SI's unnecessary abort).
* **H5** — the serial equivalent of H4.
* **H6** — serializable history unnecessarily prevented by WSI
  (WSI's unnecessary abort).
* **H7** — the serial equivalent of H6.
"""

from __future__ import annotations

from typing import Dict

from repro.history.history import History, parse_history

H1: History = parse_history("r1[x] r2[y] w1[y] w2[x] c1 c2")
"""§3.1: allowed under SI (no spatial overlap) but not serializable."""

H2: History = parse_history("r1[x] r1[y] r2[x] r2[y] w1[x] w2[y] c1 c2")
"""§3.1: write skew — violates x + y > 0 from x = y = 1."""

H3: History = parse_history("r1[x] r2[x] w2[x] w1[x] c1 c2")
"""§3.2: lost update — txn2's committed update to x is lost."""

H4: History = parse_history("r1[x] w2[x] w1[x] c1 c2")
"""§3.2: blind write by txn2 — serializable, but SI aborts it anyway."""

H5: History = parse_history("r1[x] w1[x] c1 w2[x] c2")
"""§3.2: the serial history H4 is equivalent to."""

H6: History = parse_history("r1[x] r2[z] w2[x] w1[y] c2 c1")
"""§4.3: serializable, but WSI aborts it (txn2 commits during txn1's
lifetime and writes into x, which txn1 read)."""

H7: History = parse_history("r1[x] w1[y] c1 r2[z] w2[x] c2")
"""§4.3: the serial history H6 is equivalent to."""

ALL_HISTORIES: Dict[str, History] = {
    "H1": H1,
    "H2": H2,
    "H3": H3,
    "H4": H4,
    "H5": H5,
    "H6": H6,
    "H7": H7,
}

#: The paper's claims per history: is it serializable, does the SI oracle
#: allow it, does the WSI oracle allow it.  (H5/H7 are serial, so every
#: level allows them.)
PAPER_CLAIMS: Dict[str, Dict[str, bool]] = {
    "H1": {"serializable": False, "si": True, "wsi": False},
    "H2": {"serializable": False, "si": True, "wsi": False},
    "H3": {"serializable": False, "si": False, "wsi": False},
    "H4": {"serializable": True, "si": False, "wsi": True},
    "H5": {"serializable": True, "si": True, "wsi": True},
    "H6": {"serializable": True, "si": True, "wsi": False},
    "H7": {"serializable": True, "si": True, "wsi": True},
}
