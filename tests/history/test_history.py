"""Unit tests for history parsing and derived views."""

import pytest

from repro.history.history import (
    History,
    Operation,
    abort,
    commit,
    parse_history,
    read,
    write,
)


class TestParsing:
    def test_parse_roundtrip(self):
        text = "r1[x] r2[y] w1[y] w2[x] c1 c2"
        assert str(parse_history(text)) == text

    def test_parse_operations(self):
        h = parse_history("r1[x] w2[y] c1 a2")
        assert h.operations == (
            Operation("r", 1, "x"),
            Operation("w", 2, "y"),
            Operation("c", 1),
            Operation("a", 2),
        )

    def test_parse_multicharacter_items_and_ids(self):
        h = parse_history("r12[row_a] c12")
        assert h.operations[0].txn == 12
        assert h.operations[0].item == "row_a"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_history("r1[x] banana c1")
        with pytest.raises(ValueError):
            parse_history("")

    def test_constructors_match_notation(self):
        assert str(read(1, "x")) == "r1[x]"
        assert str(write(2, "y")) == "w2[y]"
        assert str(commit(1)) == "c1"
        assert str(abort(3)) == "a3"

    def test_operation_validation(self):
        with pytest.raises(ValueError):
            Operation("x", 1)
        with pytest.raises(ValueError):
            Operation("r", 1)  # missing item
        with pytest.raises(ValueError):
            Operation("c", 1, "x")  # commit takes no item

    def test_operations_after_termination_rejected(self):
        with pytest.raises(ValueError):
            parse_history("c1 r1[x]")
        with pytest.raises(ValueError):
            parse_history("a1 w1[x]")


class TestDerivedViews:
    def test_read_write_sets(self):
        h = parse_history("r1[x] r1[y] w1[y] w1[z] c1")
        assert h.read_set(1) == {"x", "y"}
        assert h.write_set(1) == {"y", "z"}

    def test_transactions_order_of_appearance(self):
        h = parse_history("r2[x] r1[y] c2 c1")
        assert h.transactions == [2, 1]

    def test_commit_abort_flags(self):
        h = parse_history("w1[x] w2[x] c1 a2")
        assert h.is_committed(1) and not h.is_aborted(1)
        assert h.is_aborted(2) and not h.is_committed(2)
        assert h.committed_transactions() == [1]

    def test_commit_order(self):
        h = parse_history("w1[x] w2[y] c2 c1")
        assert h.commit_order() == [2, 1]

    def test_items(self):
        h = parse_history("r1[x] w1[y] c1")
        assert h.items() == {"x", "y"}

    def test_positions(self):
        h = parse_history("r1[x] r2[y] c1 c2")
        assert h.start_position(1) == 0
        assert h.start_position(2) == 1
        assert h.commit_position(1) == 2
        assert h.commit_position(2) == 3

    def test_concurrency(self):
        h = parse_history("r1[x] r2[y] c1 c2")
        assert h.are_concurrent(1, 2)
        serial = parse_history("r1[x] c1 r2[y] c2")
        assert not serial.are_concurrent(1, 2)

    def test_is_serial(self):
        assert parse_history("r1[x] w1[x] c1 w2[x] c2").is_serial()
        assert not parse_history("r1[x] w2[x] c1 c2").is_serial()


class TestReadsFrom:
    def test_snapshot_read_sees_pre_start_commit(self):
        h = parse_history("w1[x] c1 r2[x] c2")
        assert h.reads_from()[(2, "x")] == 1

    def test_snapshot_read_ignores_concurrent_commit(self):
        # txn2 started before txn1 committed: reads initial version.
        h = parse_history("r2[y] w1[x] c1 r2[x] c2")
        assert h.reads_from()[(2, "x")] is None

    def test_own_write_read(self):
        h = parse_history("w1[x] r1[x] c1")
        assert h.reads_from()[(1, "x")] == 1

    def test_physical_semantics_differ(self):
        # Physically, r2[x] follows w1[x] even though txn1 is uncommitted.
        h = parse_history("w1[x] r2[x] c1 c2")
        assert h.reads_from(snapshot_reads=False)[(2, "x")] == 1
        assert h.reads_from(snapshot_reads=True)[(2, "x")] is None

    def test_final_writer_by_commit_order(self):
        # txn1's write is physically last but txn2 commits last -> MVCC
        # installs versions at commit timestamps.
        h = parse_history("w2[x] w1[x] c1 c2")
        assert h.final_writer("x") == 2

    def test_final_writer_ignores_aborted(self):
        h = parse_history("w1[x] w2[x] c1 a2")
        assert h.final_writer("x") == 1


class TestEquality:
    def test_eq_and_hash(self):
        a = parse_history("r1[x] c1")
        b = parse_history("r1[x] c1")
        assert a == b
        assert hash(a) == hash(b)
        assert a != parse_history("w1[x] c1")

    def test_len_iter(self):
        h = parse_history("r1[x] w1[y] c1")
        assert len(h) == 3
        assert [op.kind for op in h] == ["r", "w", "c"]
