"""Unit tests for the batching WAL (Appendix A triggers)."""

import pytest

from repro.wal.bookkeeper import BookKeeperWAL
from repro.wal.ledger import LedgerManager


class TestSizeTrigger:
    def test_flush_at_one_kb(self):
        wal = BookKeeperWAL()
        # 31 records of 32 B = 992 B: still buffered
        for _ in range(31):
            assert not wal.append("commit", (1, 2), size=32)
        assert wal.pending_count == 31
        # 32nd record crosses 1 KB -> flush
        assert wal.append("commit", (1, 2), size=32)
        assert wal.pending_count == 0
        assert wal.flush_count == 1

    def test_large_record_flushes_immediately(self):
        wal = BookKeeperWAL()
        assert wal.append("snapshot", "big", size=4096)
        assert wal.flush_count == 1


class TestTimeTrigger:
    def test_flush_after_five_ms(self):
        wal = BookKeeperWAL()
        wal.append("commit", (1,), size=32)
        assert not wal.tick()  # no time elapsed yet
        wal.advance_time(0.004)
        assert not wal.tick()
        wal.advance_time(0.002)  # total 6 ms > 5 ms
        assert wal.tick()
        assert wal.pending_count == 0

    def test_tick_without_pending_rearms(self):
        wal = BookKeeperWAL()
        wal.advance_time(1.0)
        assert not wal.tick()  # nothing to flush
        wal.append("commit", (1,), size=32)
        assert not wal.tick()  # timer restarted at last tick

    def test_external_clock(self):
        now = [0.0]
        wal = BookKeeperWAL(clock=lambda: now[0])
        wal.append("commit", (1,), size=32)
        now[0] = 0.006
        assert wal.tick()


class TestBatching:
    def test_batching_factor(self):
        wal = BookKeeperWAL()
        for _ in range(64):  # two full 32-record batches
            wal.append("commit", (1,), size=32)
        assert wal.batching_factor() == pytest.approx(32.0)

    def test_effective_capacity_appendix_a(self):
        # Appendix A: batching factor 10 -> 200K TPS.
        wal = BookKeeperWAL()
        for _ in range(10):
            wal.append("commit", (1,), size=32)
        wal.flush()
        assert wal.batching_factor() == pytest.approx(10.0)
        assert wal.effective_tps_capacity() == pytest.approx(200_000)

    def test_record_counters(self):
        wal = BookKeeperWAL()
        for _ in range(40):
            wal.append("commit", (1,), size=32)
        assert wal.record_count == 40
        assert wal.flushed_record_count == 32
        assert wal.pending_count == 8


class TestDurabilityContract:
    def test_replay_returns_only_flushed_records(self):
        wal = BookKeeperWAL()
        for i in range(32):
            wal.append("commit", (i,), size=32)  # flushed at 32
        wal.append("commit", (99,), size=32)  # buffered, not durable
        payloads = [r.payload for r in wal.replay()]
        assert (99,) in payloads or len(payloads) == 32
        assert len(payloads) == 32  # the unflushed record is absent

    def test_explicit_flush_makes_durable(self):
        wal = BookKeeperWAL()
        wal.append("abort", (7,), size=32)
        wal.flush()
        records = list(wal.replay())
        assert len(records) == 1
        assert records[0].kind == "abort"

    def test_sync_callback_fires_per_batch(self):
        batches = []
        wal = BookKeeperWAL(sync_callback=batches.append)
        for _ in range(32):
            wal.append("commit", (1,), size=32)
        assert len(batches) == 1
        assert len(batches[0]) == 32

    def test_replay_order_preserved(self):
        wal = BookKeeperWAL()
        for i in range(100):
            wal.append("commit", (i,), size=32)
        wal.flush()
        payloads = [r.payload[0] for r in wal.replay()]
        assert payloads == list(range(100))


class TestLedgerRotation:
    def test_roll_ledger_flushes_and_reopens(self):
        manager = LedgerManager()
        wal = BookKeeperWAL(ledger_manager=manager)
        wal.append("commit", (1,), size=32)
        wal.roll_ledger()
        wal.append("commit", (2,), size=32)
        wal.flush()
        assert len(list(manager.ledgers())) == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BookKeeperWAL(batch_bytes=0)
        with pytest.raises(ValueError):
            BookKeeperWAL(batch_timeout=0)
