"""Crash-recovery integration tests: oracle state from WAL replay.

Appendix A: "if the status oracle server fails, the same status oracle
after recovery, or another fresh instance ... could still recreate the
memory state from the write-ahead log and continue servicing the commit
requests."
"""

import pytest

from repro.core.status_oracle import (
    CommitRequest,
    WriteSnapshotIsolationOracle,
    make_oracle,
)
from repro.wal.bookkeeper import BookKeeperWAL
from repro.wal.ledger import LedgerManager


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


class TestOracleRecovery:
    def _run_some_traffic(self, oracle):
        outcomes = {}
        t1 = oracle.begin()
        t2 = oracle.begin()
        outcomes[t1] = oracle.commit(req(t1, writes={"a", "b"}))
        outcomes[t2] = oracle.commit(req(t2, writes={"c"}, reads={"a"}))  # aborts
        t3 = oracle.begin()
        outcomes[t3] = oracle.commit(req(t3, writes={"c"}))
        return outcomes

    def test_lastcommit_reconstructed(self):
        wal = BookKeeperWAL()
        oracle = WriteSnapshotIsolationOracle(wal=wal)
        self._run_some_traffic(oracle)
        wal.flush()

        fresh = WriteSnapshotIsolationOracle()
        fresh.recover_from(wal)
        for row in ("a", "b", "c"):
            assert fresh.last_commit(row) == oracle.last_commit(row)

    def test_commit_table_reconstructed(self):
        wal = BookKeeperWAL()
        oracle = WriteSnapshotIsolationOracle(wal=wal)
        outcomes = self._run_some_traffic(oracle)
        wal.flush()

        fresh = WriteSnapshotIsolationOracle()
        fresh.recover_from(wal)
        for start_ts, result in outcomes.items():
            if result.committed:
                assert fresh.commit_table.commit_timestamp(start_ts) == (
                    result.commit_ts
                )
            else:
                assert fresh.commit_table.is_aborted(start_ts)

    def test_recovered_oracle_continues_detecting_conflicts(self):
        wal = BookKeeperWAL()
        oracle = WriteSnapshotIsolationOracle(wal=wal)
        stale = oracle.begin()  # snapshot predating the crash
        ts = oracle.begin()
        oracle.commit(req(ts, writes={"x"}))
        wal.flush()

        fresh = WriteSnapshotIsolationOracle()
        fresh.recover_from(wal)
        # the pre-crash conflict is still detected post-recovery
        result = fresh.commit(req(stale, writes={"y"}, reads={"x"}))
        assert not result.committed

    def test_recovered_timestamps_do_not_collide(self):
        wal = BookKeeperWAL()
        oracle = WriteSnapshotIsolationOracle(wal=wal)
        used = set()
        for _ in range(5):
            ts = oracle.begin()
            used.add(ts)
            result = oracle.commit(req(ts, writes={"r"}))
            if result.commit_ts:
                used.add(result.commit_ts)
        wal.flush()

        fresh = WriteSnapshotIsolationOracle()
        fresh.recover_from(wal)
        for _ in range(10):
            assert fresh.begin() not in used

    def test_unflushed_tail_is_lost_but_consistent(self):
        # Records still in the batch buffer at crash time were never
        # acknowledged; recovery sees a prefix of history.
        wal = BookKeeperWAL()
        oracle = WriteSnapshotIsolationOracle(wal=wal)
        t1 = oracle.begin()
        oracle.commit(req(t1, writes={"a"}))
        wal.flush()  # durable point
        t2 = oracle.begin()
        oracle.commit(req(t2, writes={"b"}))  # buffered, lost at crash

        fresh = WriteSnapshotIsolationOracle()
        fresh.recover_from(wal)
        assert fresh.last_commit("a") is not None
        assert fresh.last_commit("b") is None

    def test_recovery_survives_bookie_crash(self):
        manager = LedgerManager(num_bookies=3, write_quorum=2, ack_quorum=2)
        wal = BookKeeperWAL(ledger_manager=manager)
        oracle = WriteSnapshotIsolationOracle(wal=wal)
        ts = oracle.begin()
        oracle.commit(req(ts, writes={"a"}))
        wal.flush()
        manager.bookies[0].crash()  # one replica lost

        fresh = WriteSnapshotIsolationOracle()
        fresh.recover_from(wal)
        assert fresh.last_commit("a") is not None


class TestEndToEndDurability:
    def test_durable_system_full_cycle(self):
        from repro.core import create_system

        system = create_system("wsi", durable=True)
        txn = system.manager.begin()
        txn.write("account", 500)
        txn.commit()
        system.wal.flush()

        fresh_oracle = make_oracle("wsi")
        fresh_oracle.recover_from(system.wal)
        assert fresh_oracle.last_commit("account") == txn.commit_ts
