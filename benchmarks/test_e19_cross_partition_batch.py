"""E19 — the cross-partition batch protocol vs the per-request fallback.

Not a paper figure: this closes the gap E18 left open.  E18 showed the
batch-decide engine amortizing the critical section for monolithic and
partition-aligned traffic, but every **cross-partition** request still
broke the group-commit run and fell back to a per-request two-phase
decision — so hash-sharded multi-row workloads (the default shape under
§6.3 footnote 6's row-hash partitioning) lost the entire amortization
win.  E19 measures what the cross-partition batch protocol buys them.

Both sides of every pair run the *same* engine-mode frontend with the
same one-group-WAL-record-per-batch durability; the only difference is
the backend engine:

* ``cross-per-request`` — the preserved pre-protocol engine
  (``PartitionedOracle(batch_cross=False)``): runs of single-partition
  items decide in bulk, but each cross-partition item breaks the run
  and pays a share-request construction plus a ``_check`` visit per
  involved partition, one ``tso.next()`` and one commit-table call —
  per request;
* ``cross-batched`` — the cross-partition batch protocol: the whole
  flush decides with one bulk validation round and one bulk install
  round per involved partition (see ``repro/core/partitioned.py``).

Acceptance: on a cross-partition-heavy workload (every multi-row
footprint spans partitions — >= 50 % multi-partition decisions), the
batched protocol sustains >= 1.5x the per-request two-phase baseline at
batch size 32 (WSI, median of paired runs — E17/E18's protocol).

Set ``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` target) for a
tiny-sized sanity run with correspondingly relaxed bars.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.bench.frontend_bench import (
    bench_cross_partition,
    make_cross_heavy_requests,
    make_specs,
    median_speedup,
    paired_cross_speedups,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_REQUESTS = 4_000 if SMOKE else 24_000
PAIRS = 2 if SMOKE else 5
REPEATS = 1 if SMOKE else 2
#: the smoke bar is ratcheted to ~25% below the measured smoke ratio
#: (BENCH_smoke.json), so hot-path regressions fail fast at tiny sizes.
SPEEDUP_BAR = 1.3 if SMOKE else 1.5
PARTITIONS = 4
#: cross_every=1 forces every multi-row footprint cross-partition (the
#: all-cross workload); 2 mixes in an equal share of aligned traffic.
CROSS_EVERY_SWEEP = (1, 2)


@pytest.mark.figure("e19")
def test_e19_cross_partition_batch_speedup(benchmark, print_header):
    ratios = benchmark.pedantic(
        lambda: paired_cross_speedups(
            level="wsi",
            batch_size=32,
            pairs=PAIRS,
            num_requests=NUM_REQUESTS,
            partitions=PARTITIONS,
            cross_every=1,
        ),
        rounds=1,
        iterations=1,
    )
    print_header(
        "E19 — cross-partition batch protocol vs per-request two-phase "
        "(wall clock)"
    )

    specs = make_specs(NUM_REQUESTS)
    rows = []
    for cross_every in CROSS_EVERY_SWEEP:
        for per_request in (True, False):
            r = bench_cross_partition(
                "wsi",
                specs,
                batch_size=32,
                partitions=PARTITIONS,
                repeats=REPEATS,
                per_request=per_request,
                cross_every=cross_every,
            )
            rows.append(
                (
                    cross_every,
                    f"{100 * r.cross_fraction:.0f}%",
                    r.mode,
                    f"{r.ops_per_sec:,.0f}",
                    f"{r.us_per_op:.2f}",
                    r.commits,
                    r.aborts,
                )
            )
    print(
        format_table(
            ["cross_every", "cross frac", "mode", "ops/s", "us/op",
             "commits", "aborts"],
            rows,
            title=(
                f"uniform complex workload, {PARTITIONS} partitions, "
                f"{NUM_REQUESTS} commit requests, batch 32"
            ),
        )
    )
    print()
    print("paired WSI speedups at batch 32, all-cross workload "
          "(batch protocol vs per-request two-phase):")
    print("  " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(
        f"  median: {median_speedup(ratios):.2f}x "
        f"(acceptance bar: {SPEEDUP_BAR}x)"
    )

    assert median_speedup(ratios) >= SPEEDUP_BAR
    record("e19", median_speedup=median_speedup(ratios), bar=SPEEDUP_BAR)


@pytest.mark.figure("e19")
def test_e19_decisions_identical_across_modes(print_header):
    """Zero-tolerance leg: the batch protocol and the per-request
    fallback must produce identical decision and cross-fraction counts
    on every workload mix (the hypothesis suite pins full state; this
    pins it at benchmark scale)."""
    print_header("E19b — decision equality, per-request vs batch protocol")
    specs = make_specs(NUM_REQUESTS)
    for cross_every in CROSS_EVERY_SWEEP:
        per_request = bench_cross_partition(
            "wsi", specs, batch_size=32, partitions=PARTITIONS,
            repeats=1, per_request=True, cross_every=cross_every,
        )
        decided = bench_cross_partition(
            "wsi", specs, batch_size=32, partitions=PARTITIONS,
            repeats=1, per_request=False, cross_every=cross_every,
        )
        assert decided.commits == per_request.commits
        assert decided.aborts == per_request.aborts
        assert decided.cross_fraction == per_request.cross_fraction
        print(
            f"  cross_every={cross_every}: {decided.commits} commits / "
            f"{decided.aborts} aborts / "
            f"{100 * decided.cross_fraction:.0f}% cross in both modes"
        )


@pytest.mark.figure("e19")
def test_e19_workload_is_cross_heavy(print_header):
    """The acceptance workload really is cross-partition-heavy: at
    ``cross_every=1`` at least half of all decisions (commits and
    aborts alike) span partitions."""
    print_header("E19c — workload shape: cross-partition decision fraction")
    specs = make_specs(NUM_REQUESTS)
    result = bench_cross_partition(
        "wsi", specs, batch_size=32, partitions=PARTITIONS,
        repeats=1, per_request=False, cross_every=1,
    )
    print(f"  cross-partition decision fraction: "
          f"{100 * result.cross_fraction:.0f}%")
    assert result.cross_fraction >= 0.5


@pytest.mark.figure("e19")
def test_e19_protocol_round_amortization(print_header):
    """The protocol's raison d'etre, counted: per-partition bulk rounds
    per flush stay bounded by the partition count, instead of growing
    with the number of cross requests (one visit sequence each, as the
    per-request path pays)."""
    from repro.core.partitioned import PartitionedOracle
    from repro.server.frontend import OracleFrontend
    from repro.wal.bookkeeper import BookKeeperWAL

    print_header("E19d — per-partition protocol rounds per flush")
    specs = make_specs(NUM_REQUESTS // 4)
    oracle = PartitionedOracle(level="wsi", num_partitions=PARTITIONS)
    frontend = OracleFrontend(oracle, max_batch=32, wal=BookKeeperWAL())
    for request in make_cross_heavy_requests(
        frontend, specs, PARTITIONS, cross_every=1
    ):
        frontend.submit_commit_nowait(request)
    frontend.flush()
    stats = frontend.stats
    rounds = oracle.round_stats
    per_flush = stats.partition_check_rounds / stats.batches
    per_request_visits = rounds.cross_requests and (
        stats.partition_check_rounds / rounds.cross_requests
    )
    print(
        f"  {stats.batches} flushes, {rounds.cross_requests} cross requests, "
        f"{stats.partition_check_rounds} check rounds "
        f"({per_flush:.2f}/flush, {per_request_visits:.2f}/cross request), "
        f"{stats.partition_install_rounds} install rounds"
    )
    # One validation round per partition per flush at most...
    assert per_flush <= PARTITIONS
    # ...which amortizes to well under one partition visit per cross
    # request (the per-request path pays >= 2 visits per cross request).
    assert per_request_visits < 1.0
