"""The dynamic detector: seeded violations flagged, fixed patterns clean.

The seeded lock-order inversion is the canonical repro: thread(ish) A
takes ``A`` then ``B``, another path takes ``B`` then ``A`` — no actual
deadlock ever fires, but the order graph gains a cycle and the checker
must flag it.  The fixed ordering (everyone takes ``A`` before ``B``)
must pass.
"""

import os
import subprocess
import sys
import threading

import pytest

import repro
from repro.analysis.racecheck import (
    RaceChecker,
    RaceCheckError,
    TrackedLock,
    activate,
    active_checker,
    checking,
    deactivate,
    make_lock,
)


class TestLockOrder:
    def test_seeded_inversion_is_flagged(self):
        rc = RaceChecker()
        a, b = rc.lock("A"), rc.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:  # the inversion: B held while taking A
                pass
        assert len(rc.lock_order_violations) == 1
        message = rc.lock_order_violations[0]
        assert "'A'" in message and "'B'" in message
        with pytest.raises(RaceCheckError):
            rc.assert_clean()

    def test_fixed_ordering_is_accepted(self):
        rc = RaceChecker()
        a, b = rc.lock("A"), rc.lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert rc.acquisitions == 6
        rc.assert_clean()

    def test_inversion_across_real_threads(self):
        # Run the two orderings in *separate threads*, sequentially so
        # the test can never actually deadlock: edges accumulate in the
        # shared graph regardless of which thread contributed them.
        rc = RaceChecker()
        a, b = rc.lock("A"), rc.lock("B")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()
        assert rc.lock_order_violations

    def test_three_lock_cycle_found_through_path(self):
        # A->B and B->C exist; C->A closes the cycle transitively.
        rc = RaceChecker()
        a, b, c = rc.lock("A"), rc.lock("B"), rc.lock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        rc.assert_clean()  # still a DAG
        with c:
            with a:
                pass
        assert len(rc.lock_order_violations) == 1
        assert "A" in rc.lock_order_violations[0]

    def test_same_role_reentry_not_self_edge(self):
        # Two distinct locks sharing a role (two oracles' shard[0]) do
        # not generate a self-cycle.
        rc = RaceChecker()
        first, second = rc.lock("shard[0]"), rc.lock("shard[0]")
        with first:
            with second:
                pass
        rc.assert_clean()

    def test_non_lifo_release_keeps_stack_sane(self):
        rc = RaceChecker()
        a, b = rc.lock("A"), rc.lock("B")
        a.acquire()
        b.acquire()
        a.release()  # out of order: legal for plain locks
        assert rc.holds("B") and not rc.holds("A")
        b.release()
        rc.assert_clean()


class TestGuardedState:
    def test_unguarded_access_is_flagged(self):
        rc = RaceChecker()
        rc.lock("table-lock")
        rc.register_state("table", "table-lock")
        rc.access("table")
        assert len(rc.unguarded_accesses) == 1
        assert "table" in rc.unguarded_accesses[0]
        with pytest.raises(RaceCheckError):
            rc.assert_clean()

    def test_access_under_owning_lock_is_clean(self):
        rc = RaceChecker()
        lock = rc.lock("table-lock")
        rc.register_state("table", "table-lock")
        with lock:
            rc.access("table")
        rc.assert_clean()

    def test_unregistered_state_is_ignored(self):
        rc = RaceChecker()
        rc.access("nobody-declared-this")
        rc.assert_clean()


class TestActivation:
    def test_make_lock_is_plain_when_off(self):
        deactivate()
        lock = make_lock("whatever")
        assert not isinstance(lock, TrackedLock)
        with lock:
            pass

    def test_make_lock_is_tracked_when_active(self):
        rc = activate()
        try:
            lock = make_lock("tracked")
            assert isinstance(lock, TrackedLock)
            with lock:
                pass
            assert rc.acquisitions == 1
        finally:
            deactivate()

    def test_checking_restores_prior_state_and_asserts_clean(self):
        deactivate()
        with checking() as rc:
            assert active_checker() is rc
            with make_lock("A"):
                pass
        assert active_checker() is None

    def test_checking_raises_on_dirty_exit(self):
        with pytest.raises(RaceCheckError):
            with checking() as rc:
                a, b = rc.lock("A"), rc.lock("B")
                with a:
                    with b:
                        pass
                with b:
                    with a:
                        pass

    def test_env_activation_instruments_the_real_shard_locks(self):
        # A fresh interpreter with REPRO_RACECHECK=1: the partitioned
        # oracle's shard locks come out tracked, a real batch runs
        # through them, and the run ends clean.
        code = (
            "from repro.analysis.racecheck import TrackedLock, active_checker\n"
            "from repro.core.partitioned import PartitionedOracle\n"
            "from repro.core.status_oracle import CommitRequest\n"
            "oracle = PartitionedOracle(num_partitions=2, round_latency=0.0001)\n"
            "rc = active_checker()\n"
            "assert rc is not None\n"
            "assert isinstance(oracle._shard_locks[0], TrackedLock)\n"
            "reqs = [CommitRequest(oracle.begin(),\n"
            "                      write_set=frozenset({'a%d' % i, 'b%d' % i}))\n"
            "        for i in range(8)]\n"
            "results = oracle.decide_batch(reqs)\n"
            "assert all(r.committed for r in results)\n"
            "assert rc.acquisitions > 0\n"
            "rc.assert_clean()\n"
            "print('RACECHECK-OK')\n"
        )
        env = dict(os.environ, REPRO_RACECHECK="1")
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        assert "RACECHECK-OK" in proc.stdout
