"""Unit tests for the serializability checkers."""

import pytest

from repro.history.history import parse_history
from repro.history.serializability import (
    equivalent,
    equivalent_serial_order,
    find_cycle,
    is_conflict_serializable,
    is_serializable,
    mvsg,
    serialize_by_commit_order,
    topological_order,
)


class TestGraphUtilities:
    def test_find_cycle_none(self):
        assert find_cycle({1: {2}, 2: {3}, 3: set()}) is None

    def test_find_cycle_simple(self):
        cycle = find_cycle({1: {2}, 2: {1}})
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_find_self_loop(self):
        assert find_cycle({1: {1}}) is not None

    def test_topological_order(self):
        order = topological_order({1: {2}, 2: {3}, 3: set()})
        assert order == [1, 2, 3]

    def test_topological_order_cyclic_none(self):
        assert topological_order({1: {2}, 2: {1}}) is None

    def test_topological_tie_break_by_node(self):
        assert topological_order({3: set(), 1: set(), 2: set()}) == [1, 2, 3]


class TestConflictSerializability:
    def test_serial_history(self):
        assert is_conflict_serializable(parse_history("r1[x] w1[x] c1 r2[x] c2"))

    def test_classic_nonserializable(self):
        h = parse_history("r1[x] w2[x] c2 w1[x] c1")
        assert not is_conflict_serializable(h)

    def test_h4_rejected_by_single_version_theory(self):
        # The point of using MVSG instead: single-version conflict
        # serializability wrongly rejects H4.
        h4 = parse_history("r1[x] w2[x] w1[x] c1 c2")
        assert not is_conflict_serializable(h4)
        assert is_serializable(h4)

    def test_aborted_txns_excluded(self):
        h = parse_history("r1[x] w2[x] a2 w1[x] c1")
        assert is_conflict_serializable(h)


class TestMVSG:
    def test_rejects_txn_zero(self):
        with pytest.raises(ValueError):
            mvsg(parse_history("r0[x] c0"))

    def test_serial_history_acyclic(self):
        assert is_serializable(parse_history("w1[x] c1 r2[x] w2[y] c2"))

    def test_write_skew_cycle(self):
        h2 = parse_history("r1[x] r1[y] r2[x] r2[y] w1[x] w2[y] c1 c2")
        graph = mvsg(h2)
        cycle = find_cycle(graph)
        assert cycle is not None
        assert {1, 2} <= set(cycle)

    def test_serial_order_witness(self):
        h = parse_history("w1[x] c1 r2[x] w2[y] c2")
        order = equivalent_serial_order(h)
        assert order is not None
        # T1 must precede T2 (T2 read T1's write); node 0 is the initializer.
        assert order.index(1) < order.index(2)

    def test_read_only_txn_placement(self):
        # A read-only txn that read old data serializes before the writer
        # even if it commits later.
        h = parse_history("r1[x] w2[x] c2 r1[y] c1")
        assert is_serializable(h)
        order = equivalent_serial_order(h)
        assert order.index(1) < order.index(2)


class TestEquivalence:
    def test_identical_histories_equivalent(self):
        a = parse_history("w1[x] c1 r2[x] c2")
        assert equivalent(a, a)

    def test_reordered_but_same_outcome(self):
        a = parse_history("w1[x] c1 w2[y] c2")
        b = parse_history("w2[y] w1[x] c1 c2")
        assert equivalent(a, b)

    def test_different_final_writer_not_equivalent(self):
        a = parse_history("w1[x] w2[x] c1 c2")  # final x by txn2
        b = parse_history("w2[x] c2 w1[x] c1")  # final x by txn1
        assert not equivalent(a, b)

    def test_different_reads_not_equivalent(self):
        a = parse_history("w1[x] c1 r2[x] w2[y] c2")  # txn2 reads txn1's x
        b = parse_history("r2[x] w2[y] w1[x] c1 c2")  # txn2 reads initial x
        assert not equivalent(a, b)

    def test_different_committed_sets_not_equivalent(self):
        a = parse_history("w1[x] c1 w2[y] c2")
        b = parse_history("w1[x] c1 w2[y] a2")
        assert not equivalent(a, b)


class TestConstructiveSerialization:
    """The paper's serial(h) construction (§4.2 Lemmas 1-2)."""

    def test_produces_serial_history(self):
        h = parse_history("r1[x] r2[y] w2[x] c2 w1[y] c1")
        s = serialize_by_commit_order(h)
        assert s.is_serial()

    def test_write_txns_in_commit_order(self):
        h = parse_history("w1[x] w2[y] c2 c1")
        s = serialize_by_commit_order(h)
        assert s.commit_order() == [2, 1]

    def test_read_only_moved_to_start(self):
        # read-only txn1 starts first: serial(h) runs it first even though
        # it commits last.
        h = parse_history("r1[x] w2[x] c2 r1[y] c1")
        s = serialize_by_commit_order(h)
        assert s.transactions[0] == 1

    def test_aborted_transactions_dropped(self):
        h = parse_history("w1[x] w2[y] a2 c1")
        s = serialize_by_commit_order(h)
        assert s.transactions == [1]

    def test_equivalence_for_wsi_history(self):
        # A history accepted by WSI: serial(h) must be equivalent to h
        # (this is Theorem 1; the property test generalizes it).
        from repro.history.checkers import allowed_under_wsi

        h = parse_history("r1[x] w1[y] r2[z] c1 w2[q] c2")
        assert allowed_under_wsi(h).allowed
        s = serialize_by_commit_order(h)
        assert s.is_serial()
        assert equivalent(h, s)

    def test_operation_order_inside_txn_preserved(self):
        h = parse_history("r1[a] w2[x] w1[b] r1[c] c2 c1")
        s = serialize_by_commit_order(h)
        txn1_ops = [str(op) for op in s.operations_of(1)]
        assert txn1_ops == ["r1[a]", "w1[b]", "r1[c]", "c1"]
