"""Concurrency/stress tests: many sessions interleaved through the frontend.

Invariants checked under interleaved begin/commit/abort traffic from N
logical client sessions:

* no timestamp (start or commit) is ever issued twice;
* within every flushed batch, commit timestamps are strictly monotone in
  decision order;
* the backend's ``OracleStats`` totals equal the per-session sums the
  futures' callbacks accumulated — nothing lost, nothing double-counted.
"""

import random

import pytest

from repro.core.status_oracle import make_oracle
from repro.server import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL
from repro.workload.generator import WorkloadGenerator


def run_sessions(
    level="wsi",
    num_sessions=10,
    txns_per_session=120,
    max_batch=16,
    keyspace=60,
    abort_fraction=0.1,
    read_only_fraction=0.2,
    seed=1234,
):
    """Interleave N sessions; returns (frontend, oracle, sessions, batches)."""
    wal = BookKeeperWAL()
    oracle = make_oracle(level, wal=wal)
    frontend = OracleFrontend(oracle, max_batch=max_batch)
    batches = []
    frontend.on_flush(batches.append)
    rng = random.Random(seed)
    workload = WorkloadGenerator(
        distribution="uniform",
        keyspace=keyspace,
        read_only_fraction=read_only_fraction,
        max_rows=6,
        seed=seed,
    )
    sessions = [frontend.session(name=f"client-{i}") for i in range(num_sessions)]
    remaining = {s.name: txns_per_session for s in sessions}
    open_txns = []  # (session, start_ts, spec)
    active = list(sessions)
    while active or open_txns:
        # randomly either open a new transaction or settle an open one
        if active and (not open_txns or rng.random() < 0.5):
            session = rng.choice(active)
            start_ts = session.begin()
            open_txns.append((session, start_ts, workload.next_transaction()))
            remaining[session.name] -= 1
            if remaining[session.name] == 0:
                active.remove(session)
        else:
            session, start_ts, spec = open_txns.pop(
                rng.randrange(len(open_txns))
            )
            if rng.random() < abort_fraction:
                session.abort(start_ts=start_ts)
            else:
                session.commit(
                    write_set=spec.write_rows,
                    read_set=spec.read_rows,
                    start_ts=start_ts,
                )
    frontend.close()
    return frontend, oracle, sessions, batches


class TestStressInvariants:
    def setup_method(self):
        self.frontend, self.oracle, self.sessions, self.batches = run_sessions()

    def test_every_submission_decided(self):
        for session in self.sessions:
            assert session.open_count == 0
            assert session.decided == session.submitted

    def test_no_timestamp_issued_twice(self):
        seen = set()
        table = self.oracle.commit_table
        for start_ts, commit_ts in table._commits.items():
            assert start_ts not in seen
            seen.add(start_ts)
            assert commit_ts not in seen
            seen.add(commit_ts)
        for start_ts in table._aborted:
            assert start_ts not in seen
            seen.add(start_ts)
        assert self.oracle.timestamp_oracle.issued_count >= len(seen)

    def test_commit_timestamps_monotone_per_batch(self):
        for batch in self.batches:
            commit_timestamps = [c[1] for c in batch.committed_payload]
            assert commit_timestamps == sorted(commit_timestamps)
            assert len(set(commit_timestamps)) == len(commit_timestamps)

    def test_oracle_stats_equal_per_session_sums(self):
        stats = self.oracle.stats
        assert stats.commits == sum(s.commits for s in self.sessions)
        assert stats.aborts == sum(s.aborts for s in self.sessions)
        assert stats.read_only_commits == sum(
            s.read_only_commits for s in self.sessions
        )

    def test_frontend_accounting_consistent(self):
        stats = self.frontend.stats
        total_submitted = sum(s.submitted for s in self.sessions)
        assert (
            stats.batched_requests + stats.read_only_fast_path == total_submitted
        )
        assert stats.batches == len(self.batches)
        assert sum(b.size for b in self.batches) == stats.batched_requests


@pytest.mark.slow
@pytest.mark.parametrize("level", ["si", "wsi"])
@pytest.mark.parametrize("max_batch", [1, 7, 64])
def test_stress_matrix(level, max_batch):
    """Heavier sweep across levels and batch bounds."""
    frontend, oracle, sessions, batches = run_sessions(
        level=level,
        num_sessions=16,
        txns_per_session=200,
        max_batch=max_batch,
        seed=max_batch * 7919,
    )
    assert oracle.stats.commits == sum(s.commits for s in sessions)
    assert oracle.stats.aborts == sum(s.aborts for s in sessions)
    for batch in batches:
        commit_timestamps = [c[1] for c in batch.committed_payload]
        assert commit_timestamps == sorted(commit_timestamps)
        assert frontend.stats.max_batch_seen <= max_batch
    # WAL replay of the full run reconstructs the same commit table
    fresh = make_oracle(level)
    fresh.recover_from(frontend.wal)
    assert fresh.commit_table._commits == oracle.commit_table._commits
    assert fresh.commit_table._aborted == oracle.commit_table._aborted
