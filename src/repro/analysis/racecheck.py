"""Dynamic lock-order / race detector for the threaded protocol paths.

Lockdep-style checking, scaled to this repo: every hot lock in the
system (the per-shard locks in :mod:`repro.core.partitioned`, the
frontend pending-swap lock, the WAL buffer lock) is created through
:func:`make_lock`.  When checking is off — the default — that returns a
plain ``threading.Lock`` and costs nothing.  When checking is on
(``REPRO_RACECHECK=1`` in the environment, or :func:`activate` /
:func:`checking` from a test) it returns a :class:`TrackedLock` that
reports every acquire/release to the process-wide :class:`RaceChecker`,
which

* records per-thread **acquisition edges** between lock *roles*
  ("while holding A, acquired B") and fails the run when the resulting
  lock-order graph gains a cycle — the classic potential-deadlock
  signature, caught even when the interleaving that would actually
  deadlock never happens;
* checks **guarded shared state**: code paths that mutate registered
  state call :meth:`RaceChecker.access`, and an access with the owning
  lock not held by the current thread is recorded as a violation.

Locks are identified by *role* (e.g. ``"shard[3]"``, ``"wal"``), not by
instance — two WAL objects share the ``"wal"`` node, exactly like
lockdep lock classes.  That deliberately over-approximates: an ordering
that is safe only because two instances are never shared across threads
still gets flagged, which is the conservative answer we want for a
codebase growing toward shared-nothing servers.

Violations are *recorded*, not raised, at detection time (raising from
inside ``acquire`` would corrupt the protocol under test); tests and
the ``REPRO_RACECHECK=1`` harness call :meth:`RaceChecker.assert_clean`
at the end of the run.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "RACECHECK_ENV",
    "RaceChecker",
    "RaceCheckError",
    "TrackedLock",
    "activate",
    "active_checker",
    "checking",
    "deactivate",
    "make_lock",
]

RACECHECK_ENV = "REPRO_RACECHECK"


class RaceCheckError(AssertionError):
    """Raised by :meth:`RaceChecker.assert_clean` when violations exist.

    Subclasses ``AssertionError`` so a failing stress run reads as a
    test failure, with the full violation report as the message.
    """


class TrackedLock:
    """A ``threading.Lock`` that reports acquire/release to a checker.

    Duck-types the small surface the repo uses (``acquire``,
    ``release``, context manager, ``locked``) so it can replace a plain
    lock anywhere one is created through :func:`make_lock`.
    """

    __slots__ = ("role", "_lock", "_checker")

    def __init__(self, role: str, checker: "RaceChecker") -> None:
        self.role = role
        self._lock = threading.Lock()
        self._checker = checker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._checker._on_acquire(self.role)
        return got

    def release(self) -> None:
        self._checker._on_release(self.role)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrackedLock({self.role!r})"


class RaceChecker:
    """Process-wide collector of lock-order edges and guarded accesses.

    Thread-safe: the edge graph and violation lists are protected by an
    internal (untracked) mutex; the per-thread held-lock stack lives in
    ``threading.local`` and needs no locking.
    """

    def __init__(self) -> None:
        # role -> set of roles acquired while holding it.
        self._edges: Dict[str, Set[str]] = {}
        # state name -> owning lock role.
        self._guards: Dict[str, str] = {}
        self._tls = threading.local()
        self._mu = threading.Lock()
        #: Cycle records: (new_edge, cycle_path) tuples, human-readable.
        self.lock_order_violations: List[str] = []
        #: Unguarded accesses: human-readable records.
        self.unguarded_accesses: List[str] = []
        #: Total acquisitions observed (proof the instrumentation ran).
        self.acquisitions = 0

    # -- per-thread held stack -----------------------------------------

    def _held(self) -> List[str]:
        stack = getattr(self._tls, "held", None)
        if stack is None:
            stack = []
            self._tls.held = stack
        return stack

    def holds(self, role: str) -> bool:
        """True when the *current thread* holds a lock with this role."""
        return role in self._held()

    # -- lock lifecycle -------------------------------------------------

    def lock(self, role: str) -> TrackedLock:
        """Create a tracked lock participating in order checking."""
        return TrackedLock(role, self)

    def _on_acquire(self, role: str) -> None:
        held = self._held()
        with self._mu:
            self.acquisitions += 1
            for prior in held:
                if prior == role:
                    continue
                targets = self._edges.setdefault(prior, set())
                if role in targets:
                    continue
                targets.add(role)
                # New edge prior -> role: a path role ~> prior closes a
                # cycle in the order graph.
                path = self._find_path(role, prior)
                if path is not None:
                    cycle = " -> ".join(path + [role])
                    self.lock_order_violations.append(
                        f"lock-order cycle: acquired {role!r} while "
                        f"holding {prior!r}, but the reverse order "
                        f"exists: {cycle}"
                    )
        held.append(role)

    def _on_release(self, role: str) -> None:
        held = self._held()
        # Remove the innermost occurrence; non-LIFO release is legal
        # for threading.Lock and must not corrupt the stack.
        for i in range(len(held) - 1, -1, -1):
            if held[i] == role:
                del held[i]
                return

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """BFS path src ~> dst in the edge graph (caller holds _mu)."""
        if src == dst:
            return [src]
        frontier: List[Tuple[str, List[str]]] = [(src, [src])]
        seen = {src}
        while frontier:
            node, path = frontier.pop(0)
            for nxt in self._edges.get(node, ()):
                if nxt == dst:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, path + [nxt]))
        return None

    # -- guarded shared state -------------------------------------------

    def register_state(self, state: str, lock_role: str) -> None:
        """Declare that ``state`` may only be mutated under ``lock_role``."""
        with self._mu:
            self._guards[state] = lock_role

    def access(self, state: str) -> None:
        """Record an access to registered state; flag it if unguarded."""
        lock_role = self._guards.get(state)
        if lock_role is None or lock_role in self._held():
            return
        with self._mu:
            self.unguarded_accesses.append(
                f"unguarded access: {state!r} touched by "
                f"{threading.current_thread().name} without {lock_role!r}"
            )

    # -- reporting -------------------------------------------------------

    @property
    def violations(self) -> List[str]:
        return self.lock_order_violations + self.unguarded_accesses

    def report(self) -> str:
        lines = [
            f"racecheck: {self.acquisitions} acquisitions, "
            f"{len(self._edges)} lock roles with outgoing edges, "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`RaceCheckError` if any violation was recorded."""
        if self.violations:
            raise RaceCheckError(self.report())


# -- process-wide activation --------------------------------------------
#
# One checker per process, switched on either by the environment
# (REPRO_RACECHECK=1, read once on first use so hot paths never re-read
# os.environ) or programmatically by tests via activate()/checking().

_active: Optional[RaceChecker] = None
_env_checked = False
_activation_mu = threading.Lock()


def active_checker() -> Optional[RaceChecker]:
    """The process-wide checker, or ``None`` when checking is off."""
    global _active, _env_checked
    if _active is None and not _env_checked:
        with _activation_mu:
            if not _env_checked:
                if os.environ.get(RACECHECK_ENV, "") not in ("", "0"):
                    _active = RaceChecker()
                _env_checked = True
    return _active


def activate(checker: Optional[RaceChecker] = None) -> RaceChecker:
    """Switch checking on (tests); returns the installed checker."""
    global _active, _env_checked
    with _activation_mu:
        _active = checker or RaceChecker()
        _env_checked = True
        return _active


def deactivate() -> None:
    """Switch checking off (tests)."""
    global _active
    with _activation_mu:
        _active = None


class checking:
    """Context manager: run a block under a fresh activated checker.

    >>> with checking() as rc:
    ...     run_workload()
    ... # assert_clean runs on clean exit; prior state is restored.
    """

    def __init__(self, checker: Optional[RaceChecker] = None) -> None:
        self.checker = checker or RaceChecker()
        self._prior: Optional[RaceChecker] = None

    def __enter__(self) -> RaceChecker:
        global _active
        self._prior = _active
        activate(self.checker)
        return self.checker

    def __exit__(self, exc_type: object, *exc: object) -> None:
        global _active
        with _activation_mu:
            _active = self._prior
        if exc_type is None:
            self.checker.assert_clean()


def make_lock(role: str):
    """A lock for ``role``: tracked when checking is on, plain when off.

    The single creation point every instrumented lock in the repo goes
    through — ``threading.Lock()`` cost and semantics when checking is
    off, full order/guard tracking when on.
    """
    checker = active_checker()
    if checker is None:
        return threading.Lock()
    return checker.lock(role)
