"""E14 (extension) — partitioned status oracles: footnote 6's scale-out.

§6.3, footnote 6: "To get a higher throughput, one could partition the
database and use a status oracle for each partition."  This benchmark
simulates 1, 2, 4 and 8 conflict-detection partitions, each with its own
critical section, under the complex workload.  Single-partition
transactions touch one critical section; cross-partition transactions
visit every involved partition sequentially (phase 1 checks) — so the
scaling curve flattens as the cross-partition fraction grows, which is
exactly the trade-off that kept the paper's deployment monolithic.
"""

import pytest

from repro.bench import format_table
from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest
from repro.sim.engine import Engine, Resource
from repro.sim.latency import paper_latency_model
from repro.workload import complex_workload

CLIENTS = 16  # enough outstanding work to saturate every configuration
OUTSTANDING = 100
MEASURE = 0.25
WARMUP = 0.05


def run_partitions(num_partitions: int):
    engine = Engine()
    latency = paper_latency_model(seed=81)
    oracle = PartitionedOracle(level="wsi", num_partitions=num_partitions)
    sections = [
        Resource(engine, capacity=1, name=f"cs{i}") for i in range(num_partitions)
    ]
    workload = complex_workload(distribution="uniform", keyspace=20_000_000, seed=81)
    done = {"commits": 0, "aborts": 0}

    def client():
        while True:
            yield engine.timeout(latency.sample_start_timestamp())
            start_ts = oracle.begin()
            spec = workload.next_transaction()
            request = CommitRequest(
                start_ts,
                write_set=frozenset(spec.write_rows),
                read_set=frozenset(spec.read_rows),
            )
            involved = sorted(
                {oracle.partition_of(r) for r in request.write_set}
                | {oracle.partition_of(r) for r in request.read_set}
            )
            # visit each involved partition's critical section in order
            for pid in involved:
                share = sum(
                    1 for r in request.read_set | request.write_set
                    if oracle.partition_of(r) == pid
                )
                yield sections[pid].acquire()
                yield engine.timeout(
                    latency.sample(latency.oracle_service_wsi(share, share))
                )
                sections[pid].release()
            result = oracle.commit(request)
            if engine.now >= WARMUP:
                done["commits" if result.committed else "aborts"] += 1

    for _ in range(CLIENTS * OUTSTANDING):
        engine.process(client())
    engine.run(until=WARMUP + MEASURE)
    total = done["commits"] + done["aborts"]
    return {
        "partitions": num_partitions,
        "tps": total / MEASURE,
        "cross_fraction": oracle.cross_partition_fraction(),
    }


@pytest.mark.figure("partitioned")
def test_e14_partitioned_oracle_scaling(benchmark, print_header):
    results = benchmark.pedantic(
        lambda: [run_partitions(n) for n in (1, 2, 4, 8)],
        rounds=1,
        iterations=1,
    )
    print_header("E14 — partitioned status oracle: throughput scaling (footnote 6)")
    base = results[0]["tps"]
    print(
        format_table(
            ["partitions", "TPS", "speedup", "cross-partition txns"],
            [
                (
                    r["partitions"],
                    f"{r['tps']:.0f}",
                    f"x{r['tps'] / base:.2f}",
                    f"{100 * r['cross_fraction']:.0f}%",
                )
                for r in results
            ],
            title="complex workload, uniform 20M rows, 16 clients x 100 outstanding",
        )
    )
    tps = [r["tps"] for r in results]
    # Scaling: more partitions -> more throughput, but sublinear (the
    # cross-partition tax); 8 partitions must beat 1 clearly yet stay
    # below the 8x ideal.
    assert tps[1] > 1.2 * tps[0]
    assert tps[3] > 1.5 * tps[0]
    assert tps[3] < 8 * tps[0]
    # With ~10-row transactions over a hash-partitioned space, almost
    # everything is cross-partition at 8 partitions — the flattening is
    # structural, matching why the paper kept one oracle per deployment.
    assert results[3]["cross_fraction"] > 0.5
