"""E22 — high-availability serving: warm failover + overload shedding.

Not a paper figure: Appendix A only *claims* the status oracle can be
restarted from the WAL ("another fresh instance ... could still
recreate the memory state").  This benchmark measures the two numbers
a deployment of that claim actually lives on:

* **Failover leg** — a warm standby that tails the shared WAL takes
  over in O(delta): at >= 10k durable WAL records the warm takeover is
  >= 5x faster wall-clock than a cold full-log replay (typically one to
  two orders of magnitude — the delta is whatever accrued since the
  last tail poll, independent of history length).  Timestamps are never
  reused across the failover.
* **Overload leg** — with ``max_queue_depth`` admission control and
  client retry/backoff, offering 2x the measured closed-loop capacity
  sustains >= 0.8x of the 1x-offered throughput with the queue depth
  bounded the whole run — load shedding, not congestion collapse.

Set ``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` target) for a
tiny-sized sanity run with correspondingly relaxed bars.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.coord import OracleReplicaSet
from repro.core.status_oracle import CommitRequest
from repro.sim.frontend_sim import GroupCommitSim

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Failover leg: durable WAL records before the leader dies.
WAL_RECORDS = 2_000 if SMOKE else 12_000
#: warm-standby cadence interval in clock ticks (the loader ticks its
#: manual clock once per commit, so the takeover delta is at most this).
POLL_EVERY = 500
WARM_BAR = 2.0 if SMOKE else 5.0

#: Overload leg sizing.
MEASURE = 0.06 if SMOKE else 0.25
WARMUP = 0.02 if SMOKE else 0.05
QUEUE_DEPTH = 256
SUSTAIN_BAR = 0.7 if SMOKE else 0.8


def _load_replica_set(warm):
    """Drive WAL_RECORDS committed writes through a replica set.

    Warm standbys tail the shared WAL on the replica set's own
    clock-driven :class:`~repro.coord.failover.CatchUpCadence` (a
    manual clock the loader ticks once per commit, POLL_EVERY ticks per
    interval): when the cadence comes due, the commit path itself
    flushes the ledger and polls the standby tails, so the takeover
    delta stays bounded by the cadence — not by a hand-rolled
    commit-count modulus in the driver."""
    clock = [0.0]
    rs = OracleReplicaSet(
        num_hosts=2,
        level="wsi",
        warm=warm,
        catch_up_interval=POLL_EVERY if warm else None,
        clock=lambda: clock[0],
    )
    for i in range(WAL_RECORDS):
        clock[0] += 1.0
        ts = rs.begin()
        rs.commit(CommitRequest(ts, write_set=frozenset({f"row{i}"})))
    rs.wal.flush()
    if warm:
        rs.standby_catch_up()
    return rs


@pytest.mark.figure("e22")
def test_e22_warm_failover_speedup(print_header):
    print_header(
        "E22 — warm-standby takeover vs cold full-log replay (wall clock)"
    )
    rows = []
    results = {}
    for mode, warm in (("cold", False), ("warm", True)):
        rs = _load_replica_set(warm)
        # every timestamp the old regime issued (begins + commit ts)
        table = rs.active_host().oracle.commit_table
        used = set(table._commits) | set(table._commits.values())
        rs.kill_active()
        host = rs.active_host()
        results[mode] = host
        # service continues, and no timestamp is ever reissued
        for i in range(50):
            ts = rs.begin()
            assert ts not in used
            used.add(ts)
            result = rs.commit(
                CommitRequest(ts, write_set=frozenset({f"post{i}"}))
            )
            if result.committed:
                assert result.commit_ts not in (used - {ts})
                used.add(result.commit_ts)
        rows.append(
            (
                mode,
                WAL_RECORDS,
                host.recovered_records,
                host.standby_records,
                f"{1000 * host.takeover_seconds:.2f}",
            )
        )
    ratio = (
        results["cold"].takeover_seconds / results["warm"].takeover_seconds
    )
    print(
        format_table(
            ["takeover", "log records", "replayed", "pre-applied", "ms"],
            rows,
            title=(
                f"{WAL_RECORDS} durable group-commit-era records, "
                f"standby polls every {POLL_EVERY}"
            ),
        )
    )
    print(
        f"  warm over cold: {ratio:.1f}x faster takeover "
        f"(acceptance bar: {WARM_BAR}x)"
    )
    # the warm standby replayed only the un-polled suffix
    assert results["warm"].recovered_records <= POLL_EVERY
    assert results["cold"].recovered_records >= WAL_RECORDS
    assert ratio >= WARM_BAR
    record(
        "e22",
        warm_over_cold=ratio,
        wal_records=WAL_RECORDS,
        warm_takeover_ms=1000 * results["warm"].takeover_seconds,
        cold_takeover_ms=1000 * results["cold"].takeover_seconds,
        warm_delta_records=results["warm"].recovered_records,
    )


def _offered_run(offered_tps):
    return GroupCommitSim(
        level="wsi",
        batch_size=32,
        num_clients=4,
        warmup=WARMUP,
        measure=MEASURE,
        seed=11,
        offered_tps=offered_tps,
        max_queue_depth=QUEUE_DEPTH,
    ).run()


@pytest.mark.figure("e22")
def test_e22_overload_sustains_throughput(print_header):
    print_header(
        "E22b — admission control under 2x-capacity offered load "
        "(simulated time)"
    )
    # Self-calibrate: closed-loop capacity of this configuration.
    capacity = GroupCommitSim(
        level="wsi",
        batch_size=32,
        num_clients=4,
        outstanding_per_client=32,
        warmup=WARMUP,
        measure=MEASURE,
        seed=11,
    ).run().throughput_tps
    runs = {
        "1x": _offered_run(capacity),
        "2x": _offered_run(2 * capacity),
    }
    rows = [
        (
            label,
            f"{r.offered_tps:,.0f}",
            f"{r.throughput_tps:,.0f}",
            r.max_inflight_seen,
            r.overload_rejections,
            r.shed_requests,
        )
        for label, r in runs.items()
    ]
    sustain = runs["2x"].throughput_tps / runs["1x"].throughput_tps
    print(
        format_table(
            ["offered", "tps offered", "tps served", "max queue", "rejects", "shed"],
            rows,
            title=(
                f"closed-loop capacity {capacity:,.0f} tps, "
                f"max_queue_depth={QUEUE_DEPTH}"
            ),
        )
    )
    print(
        f"  2x-over-1x sustain: {sustain:.2f}x "
        f"(acceptance bar: {SUSTAIN_BAR}x; collapse would be << 1)"
    )
    for r in runs.values():
        # bounded the whole run — shedding, not unbounded queueing
        assert 0 < r.max_inflight_seen <= QUEUE_DEPTH
    # the overloaded tier actually shed (or rejected-then-absorbed) load
    assert runs["2x"].overload_rejections > 0
    assert sustain >= SUSTAIN_BAR
    record(
        "e22",
        capacity_tps=capacity,
        overload_sustain=sustain,
        served_1x_tps=runs["1x"].throughput_tps,
        served_2x_tps=runs["2x"].throughput_tps,
        max_queue_depth_seen=runs["2x"].max_inflight_seen,
    )


@pytest.mark.figure("e22")
def test_e22_no_ts_reuse_under_overload(print_header):
    """Zero-tolerance leg: shed and retried requests never leak a
    timestamp into reuse — every begin and every commit timestamp
    across overload/backoff/resubmit is unique."""
    from repro.core.errors import Overloaded
    from repro.core.status_oracle import make_oracle
    from repro.server import OracleFrontend

    print_header("E22c — timestamp uniqueness across overload retries")
    # depth below the count trigger, so admission — not the batch
    # bound — is what pushes back
    frontend = OracleFrontend(
        make_oracle("wsi"), max_batch=8, max_queue_depth=6
    )
    futures = []
    begins = []
    n = 200 if SMOKE else 2_000
    for i in range(n):
        ts = frontend.begin()
        begins.append(ts)
        request = CommitRequest(ts, write_set=frozenset({f"k{i % 64}"}))
        while True:
            try:
                futures.append(frontend.submit_commit(request))
                break
            except Overloaded:
                frontend.flush()  # the deployment's drive loop drains
    frontend.flush()
    commit_ts = [
        f.commit_ts for f in futures if f.outcome() == "committed"
    ]
    seen = begins + commit_ts
    assert len(seen) == len(set(seen))
    assert frontend.stats.overload_rejections > 0
    print(
        f"  {len(begins)} begins + {len(commit_ts)} commit timestamps "
        f"all distinct across {frontend.stats.overload_rejections} "
        f"overload rejections"
    )
