"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, Event, Resource


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.call_in(2.0, lambda: fired.append("b"))
        engine.call_in(1.0, lambda: fired.append("a"))
        engine.call_in(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        engine = Engine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.call_in(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_now_advances(self):
        engine = Engine()
        times = []
        engine.call_in(1.5, lambda: times.append(engine.now))
        engine.call_in(4.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.5, 4.0]

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.call_in(1.0, lambda: fired.append(1))
        engine.call_in(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_count == 1

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.call_in(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.call_at(0.5, lambda: None)


class TestEvents:
    def test_succeed_triggers_callbacks(self):
        engine = Engine()
        event = engine.event()
        values = []
        event.add_callback(lambda e: values.append(e.value))
        event.succeed("payload")
        assert values == ["payload"]

    def test_double_trigger_rejected(self):
        event = Engine().event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_callback_on_already_triggered(self):
        event = Engine().event()
        event.succeed(1)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [1]


class TestProcesses:
    def test_process_advances_through_timeouts(self):
        engine = Engine()
        trace = []

        def proc():
            trace.append(("start", engine.now))
            yield engine.timeout(1.0)
            trace.append(("mid", engine.now))
            yield engine.timeout(2.0)
            trace.append(("end", engine.now))

        engine.process(proc())
        engine.run()
        assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]

    def test_process_completion_event(self):
        engine = Engine()

        def proc():
            yield engine.timeout(1.0)
            return "result"

        done = engine.process(proc())
        engine.run()
        assert done.triggered
        assert done.value == "result"

    def test_processes_interleave(self):
        engine = Engine()
        trace = []

        def proc(name, delay):
            yield engine.timeout(delay)
            trace.append(name)
            yield engine.timeout(delay)
            trace.append(name)

        engine.process(proc("slow", 3.0))
        engine.process(proc("fast", 1.0))
        engine.run()
        assert trace == ["fast", "fast", "slow", "slow"]


class TestResource:
    def test_capacity_limits_concurrency(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        done_times = []

        def worker():
            yield from resource.serve(1.0)
            done_times.append(engine.now)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        # 2 servers, 4 jobs of 1s: finish at t=1,1,2,2
        assert done_times == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_ordering(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        order = []

        def worker(tag):
            yield from resource.serve(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            engine.process(worker(tag))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_release_without_acquire_fails(self):
        with pytest.raises(RuntimeError):
            Resource(Engine(), capacity=1).release()

    def test_utilization_accounting(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def worker():
            yield from resource.serve(2.0)

        engine.process(worker())
        engine.run(until=4.0)
        assert resource.utilization() == pytest.approx(0.5)

    def test_queue_metrics(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def worker():
            yield from resource.serve(1.0)

        for _ in range(5):
            engine.process(worker())
        engine.run()
        assert resource.total_requests == 5
        assert resource.max_queue_len == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)
