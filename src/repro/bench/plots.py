"""ASCII scatter/line charts for the figure benchmarks.

The paper's evaluation is figures; our benchmarks print tables plus,
via this module, terminal-renderable charts of the same series — enough
to *see* the latency hockey stick or the abort-rate slope without any
plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: glyphs assigned to series, in order of addition.
SERIES_GLYPHS = "*o+x#@%&"


@dataclass
class Series:
    name: str
    points: List[Tuple[float, float]]
    glyph: str


class AsciiChart:
    """An x/y scatter chart rendered with unicode-free ASCII.

    Usage::

        chart = AsciiChart(title="Figure 5", xlabel="TPS", ylabel="ms")
        chart.add_series("WSI", [(24e3, 4.1), (92e3, 8.7), ...])
        chart.add_series("SI", [...])
        print(chart.render())
    """

    def __init__(
        self,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
        width: int = 64,
        height: int = 18,
    ) -> None:
        if width < 16 or height < 6:
            raise ValueError("chart too small to render")
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self._series: List[Series] = []

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise ValueError(f"series {name!r} has no points")
        glyph = SERIES_GLYPHS[len(self._series) % len(SERIES_GLYPHS)]
        self._series.append(Series(name, sorted(points), glyph))

    # ------------------------------------------------------------------
    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x for s in self._series for x, _ in s.points]
        ys = [y for s in self._series for _, y in s.points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        # anchor at zero when the data is non-negative and nearby
        if 0 <= x_lo < 0.5 * x_hi:
            x_lo = 0.0
        if 0 <= y_lo < 0.5 * y_hi:
            y_lo = 0.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        if not self._series:
            raise ValueError("no series to render")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]
        for series in self._series:
            for x, y in series.points:
                col = int((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
                row = int((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
                grid[self.height - 1 - row][col] = series.glyph

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        legend = "   ".join(f"{s.glyph} {s.name}" for s in self._series)
        lines.append(legend)
        y_hi_label = f"{y_hi:g}"
        y_lo_label = f"{y_lo:g}"
        margin = max(len(y_hi_label), len(y_lo_label), len(self.ylabel)) + 1
        for i, row_chars in enumerate(grid):
            if i == 0:
                label = y_hi_label
            elif i == self.height - 1:
                label = y_lo_label
            elif i == self.height // 2 and self.ylabel:
                label = self.ylabel
            else:
                label = ""
            lines.append(f"{label:>{margin}} |" + "".join(row_chars))
        lines.append(" " * margin + " +" + "-" * self.width)
        x_axis = f"{x_lo:g}"
        x_end = f"{x_hi:g}"
        pad = self.width - len(x_axis) - len(x_end)
        xlabel = f" {self.xlabel} " if self.xlabel else ""
        middle = xlabel.center(max(pad, len(xlabel)))
        lines.append(" " * margin + "  " + x_axis + middle + x_end)
        return "\n".join(lines)


def latency_throughput_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
) -> str:
    """Convenience wrapper for the paper's standard axes."""
    chart = AsciiChart(
        title=title,
        xlabel="Throughput in TPS",
        ylabel="ms",
        width=width,
        height=height,
    )
    for name, points in series.items():
        chart.add_series(name, points)
    return chart.render()


def abort_rate_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 14,
) -> str:
    """Abort-rate-vs-throughput axes (Figures 8 and 10)."""
    chart = AsciiChart(
        title=title,
        xlabel="Throughput in TPS",
        ylabel="ab%",
        width=width,
        height=height,
    )
    for name, points in series.items():
        chart.add_series(name, points)
    return chart.render()
