"""Unit tests for SI/WSI history admissibility replay."""

import pytest

from repro.history import (
    allowed_under,
    allowed_under_si,
    allowed_under_wsi,
    parse_history,
)


class TestSIReplay:
    def test_serial_always_allowed(self):
        h = parse_history("w1[x] c1 w2[x] c2")
        assert allowed_under_si(h).allowed

    def test_concurrent_same_row_writers_rejected(self):
        h = parse_history("w1[x] w2[x] c1 c2")
        result = allowed_under_si(h)
        assert not result.allowed
        assert result.first_rejected == 2
        assert result.conflict_row == "x"
        assert result.conflicting_with == 1

    def test_first_committer_wins(self):
        # The one that reaches the oracle first commits (§2.2).
        h = parse_history("w1[x] w2[x] c2 c1")
        result = allowed_under_si(h)
        assert result.first_rejected == 1

    def test_reads_never_matter_for_si(self):
        h = parse_history("r1[x] r1[y] w2[x] w2[y] c2 c1")
        assert allowed_under_si(h).allowed


class TestWSIReplay:
    def test_reader_unaffected_if_writer_commits_after(self):
        # rw-temporal requires the writer to commit inside the reader's
        # lifetime; committing after the reader is fine (txn_c'' in Fig 2).
        h = parse_history("r1[x] w1[y] w2[x] c1 c2")
        assert allowed_under_wsi(h).allowed

    def test_reader_aborts_if_writer_commits_inside(self):
        h = parse_history("r1[x] w1[y] w2[x] c2 c1")
        result = allowed_under_wsi(h)
        assert not result.allowed
        assert result.first_rejected == 1

    def test_read_only_exemption(self):
        # txn1 is read-only: its read set is not checked (§4.1 cond. 3).
        h = parse_history("r1[x] w2[x] c2 c1")
        assert allowed_under_wsi(h).allowed

    def test_write_txn_checked_even_with_one_read(self):
        h = parse_history("r1[x] w2[x] c2 w1[y] c1")
        assert not allowed_under_wsi(h).allowed

    def test_own_write_read_is_not_a_conflict(self):
        h = parse_history("w1[x] r1[x] w2[q] c2 c1")
        assert allowed_under_wsi(h).allowed


class TestDispatchAndResult:
    def test_allowed_under_dispatch(self):
        h = parse_history("w1[x] w2[x] c1 c2")
        assert not allowed_under(h, "si").allowed
        assert allowed_under(h, "wsi").allowed

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            allowed_under(parse_history("c1"), "2pl")

    def test_result_truthiness(self):
        h = parse_history("w1[x] c1")
        assert allowed_under_si(h)
        h2 = parse_history("w1[x] w2[x] c1 c2")
        assert not allowed_under_si(h2)

    def test_aborted_txn_does_not_update_lastcommit(self):
        # txn1 aborts: its writes must not block txn2.
        h = parse_history("w1[x] a1 w2[x] c2")
        assert allowed_under_si(h).allowed
