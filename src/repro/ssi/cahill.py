"""Serializable snapshot isolation (Cahill et al. [8]), oracle-adapted.

The paper's related work (§7.1) discusses Cahill, Röhm and Fekete's
*Serializable Isolation for Snapshot Databases* (TODS 2009): keep
snapshot isolation's write-write aborts, additionally track read-write
**antidependencies** (``rw``-edges: reader → overwriting writer) between
concurrent transactions, and abort when a transaction becomes a *pivot*
— it has both an incoming and an outgoing rw-edge — since every
SI anomaly contains such a structure.  The check is conservative:
"It, however, allows for false positives, which further lowers the
concurrency level due to unnecessary aborts."

This module adapts the algorithm to the paper's centralized, lock-free
setting so it can be compared head-to-head with SI and WSI: instead of
SIREAD locks, the oracle retains the (read set, write set, interval) of
recently committed transactions and evaluates rw-edges at commit time.

At commit of ``T`` against each *concurrent* committed ``C``:

* ``C.read_set ∩ T.write_set`` ≠ ∅  →  edge ``C → T`` (T has in-conflict,
  C gains out-conflict);
* ``T.read_set ∩ C.write_set`` ≠ ∅  →  edge ``T → C`` (T has
  out-conflict, C gains in-conflict).

``T`` aborts if committing it would give *any* transaction — itself or
an already-committed neighbour — both flags (a committed transaction
cannot be aborted retroactively, so the pivot must be prevented by
aborting ``T``).

The retained-footprint window is pruned below the oldest active start
timestamp, mirroring how SIREAD locks are released once no concurrent
transaction remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.errors import OracleClosed
from repro.core.status_oracle import (
    CLIENT_ABORT,
    CommitRequest,
    CommitResult,
    StatusOracle,
)

RowKey = Hashable


@dataclass(slots=True)
class _CommittedTxn:
    """Footprint of a committed transaction retained for edge detection."""

    start_ts: int
    commit_ts: int
    read_set: FrozenSet[RowKey]
    write_set: FrozenSet[RowKey]
    in_conflict: bool = False   # some concurrent txn has an rw-edge INTO it
    out_conflict: bool = False  # it has an rw-edge into a concurrent txn
    #: position in ``_recent`` while a batched flush is running — the
    #: deferred-prune liveness predicate compares it against the
    #: clear-all watermark (meaningless outside ``_decide_batch``).
    idx: int = 0


class SerializableSIOracle(StatusOracle):
    """SI + commit-time dangerous-structure detection (Cahill-style).

    Keeps Algorithm 1's write-write check (SSI retains SI's first-
    committer-wins rule) and layers the pivot check on top.
    """

    level = "ssi"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._active_starts: Set[int] = set()
        self._recent: List[_CommittedTxn] = []
        self.pivot_aborts = 0

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def begin(self) -> int:
        ts = super().begin()
        self._active_starts.add(ts)
        return ts

    def abort(self, start_ts: int) -> None:
        # A client abort ends the transaction: without the discard its
        # start pins the prune horizon and ``_recent`` never shrinks.
        self._active_starts.discard(start_ts)
        super().abort(start_ts)

    def release_start(self, start_ts: int) -> None:
        """Mark a begun transaction finished without a commit/abort call.

        The serving frontend resolves empty-footprint commit requests at
        submit time — correct (no footprint, no dangerous structure),
        but the engine would otherwise keep the start in its active set
        forever, pinning the min-active prune horizon at that start and
        making the retained-footprint window grow without bound.  The
        frontend calls this hook from its fast path when the backend
        exposes it.
        """
        self._active_starts.discard(start_ts)

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        return request.write_set  # the SI ww-check is kept verbatim

    def commit(self, request: CommitRequest) -> CommitResult:
        self._active_starts.discard(request.start_ts)

        # Read-only fast path: a read-only transaction can participate in
        # a dangerous structure only as a pivot's *source*; Cahill's
        # optimization (and ours): snapshot reads make it safe to commit
        # read-only transactions that submit empty sets.
        if request.is_read_only and not request.read_set:
            return super().commit(request)

        # Phase 1: SI's write-write check (inherited machinery).
        conflict = self._check(request)
        if conflict is not None:
            reason, row = conflict
            self.stats.aborts += 1
            self.stats.conflict_aborts += 1
            self.commit_table.record_abort(request.start_ts)
            self._log("abort", (request.start_ts,))
            return CommitResult(
                False, request.start_ts, reason=reason, conflict_row=row
            )

        # Phase 2: dangerous-structure (pivot) check against concurrent
        # committed transactions.
        in_edge, out_edge, neighbours = self._edges(request)
        if in_edge and out_edge:
            self.pivot_aborts += 1
            return self._abort_pivot(request, "ssi-pivot-self")
        for neighbour, gains_in, gains_out in neighbours:
            if (neighbour.in_conflict or gains_in) and (
                neighbour.out_conflict or gains_out
            ):
                self.pivot_aborts += 1
                return self._abort_pivot(request, "ssi-pivot-neighbour")

        # Safe: commit, apply edge flags, retain the footprint.
        commit_ts = self._tso.next()
        rows = self.rows_to_update(request)
        self._install(rows, commit_ts)
        self.stats.rows_updated += len(rows)
        self.commit_table.record_commit(request.start_ts, commit_ts)
        self.stats.commits += 1
        self._log("commit", (request.start_ts, commit_ts, tuple(rows)))
        for neighbour, gains_in, gains_out in neighbours:
            neighbour.in_conflict = neighbour.in_conflict or gains_in
            neighbour.out_conflict = neighbour.out_conflict or gains_out
        self._recent.append(
            _CommittedTxn(
                request.start_ts,
                commit_ts,
                request.read_set,
                request.write_set,
                in_conflict=in_edge,
                out_conflict=out_edge,
            )
        )
        self._prune()
        return CommitResult(True, request.start_ts, commit_ts=commit_ts)

    # ------------------------------------------------------------------
    # the group-commit hot path
    # ------------------------------------------------------------------
    def _decide_batch(self, batch, payload_commits, payload_aborts, errors,
                      results=None):
        """Bulk rw-antidependency pass for a whole flush.

        The generic :class:`StatusOracle` loop would skip the pivot
        check entirely (it only knows ``_check``/``_install``), so SSI
        supplies its own engine.  Observationally equivalent to
        :meth:`commit`/:meth:`abort` in batch order — same decisions,
        commit timestamps, lastCommit, commit table, stats,
        ``pivot_aborts`` and retained footprints — with the edge scan
        restructured for the batch:

        * an **aggregate screen** over the retained footprints (the
          union of their read rows, the union of their written rows) is
          built once per flush and kept current as batch commits
          append; a request disjoint from both aggregates — the common
          case — provably has no rw-edge and skips the scan, and only
          an aggregate hit pays the per-footprint intersection pass;
        * pruning is **deferred**: the sequential path rebuilds
          ``_recent`` after every commit, but a footprint dead at any
          intermediate horizon is dead at every later one (the
          min-active horizon only rises, commit timestamps only grow),
          so liveness is tracked as a predicate — appended at or after
          the last clear-all, commit_ts above the highest horizon — and
          the list is rebuilt once at the end of the flush.
        """
        if self._closed:
            raise OracleClosed("status oracle is closed")
        tso = self._tso
        if tso._closed:
            raise OracleClosed("timestamp oracle is closed")
        lc = self._last_commit
        lc_get = lc.get
        lc_update = lc.update
        lc_isdisjoint = lc.keys().isdisjoint
        fromkeys = dict.fromkeys
        ct = self.commit_table
        # Replicas subscribed to the commit table must see every decision,
        # so only bypass its record methods when nobody is listening.
        fast_ct = not ct._subscribers
        ct_commits = ct._commits
        ct_aborted = ct._aborted
        record_abort = ct.record_abort
        record_commit = ct.record_commit
        active = self._active_starts
        active_discard = active.discard
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        nxt = tso._next
        reserved = tso._reserved_until
        # The bulk rw-edge screen: two aggregate row sets — every row
        # any retained footprint read, every row one wrote.  A request
        # whose write set misses the read aggregate and whose read set
        # misses the write aggregate has no rw-edge with *any* retained
        # footprint (two C-speed ``isdisjoint`` calls decide the common
        # no-overlap case); only on a hit does the slow path scan the
        # live footprints with per-pair intersections.  The aggregates
        # are conservative — they keep rows of footprints a deferred
        # prune has already condemned — which costs a false slow-path,
        # never a wrong edge (the scan re-checks liveness per
        # footprint via ``idx``/``commit_ts``).
        recent = self._recent
        recent_append = recent.append
        agg_read: set = set()
        agg_write: set = set()
        agg_read_update = agg_read.update
        agg_write_update = agg_write.update
        agg_read_isdisjoint = agg_read.isdisjoint
        agg_write_isdisjoint = agg_write.isdisjoint
        committed_txn = _CommittedTxn
        for i, c in enumerate(recent):
            c.idx = i
            agg_read_update(c.read_set)
            agg_write_update(c.write_set)
        no_gains: Dict[int, list] = {}
        # Deferred-prune liveness: a footprint is live iff its index is
        # >= clear_from (no clear-all since it was retained) and its
        # commit_ts > floor (above every horizon pruned so far).
        floor = 0
        clear_from = 0
        commits = conflict_aborts = client_aborts = ro_commits = 0
        pivots = issued = rows_checked = rows_updated = 0
        try:
            for item in batch:
                if item.__class__ is CommitRequest:
                    req, fut = item, None
                else:
                    if item.__class__ is tuple:
                        req, fut = item
                    else:
                        req, fut = item, None
                    if req.__class__ is not CommitRequest:
                        start = req  # client-initiated abort
                        active_discard(start)
                        try:
                            if fast_ct:
                                if start in ct_commits:
                                    raise ValueError(
                                        f"txn {start} already committed; "
                                        "cannot abort"
                                    )
                                ct_aborted.add(start)
                            else:
                                record_abort(start)
                        except Exception as exc:
                            errors.append((start, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        client_aborts += 1
                        pa_append(start)
                        if fut is not None:
                            fut._reason = CLIENT_ABORT
                        if res_append is not None:
                            res_append(
                                CommitResult(False, start, reason=CLIENT_ABORT)
                            )
                        continue
                start = req.start_ts
                active_discard(start)
                ws = req.write_set
                rs = req.read_set
                if not ws and not rs:
                    # Cahill's read-only optimization: an empty footprint
                    # cannot be part of a dangerous structure.
                    ro_commits += 1
                    if fut is not None:
                        fut._committed = True
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=None))
                    continue
                # Phase 1: SI's write-write check, kept verbatim.
                conflict_row = None
                if ws:
                    if lc_isdisjoint(ws):
                        rows_checked += len(ws)
                    else:
                        for row in ws:
                            rows_checked += 1
                            last = lc_get(row)
                            if last is not None and last > start:
                                conflict_row = row
                                break
                if conflict_row is not None:
                    try:
                        if fast_ct:
                            if start in ct_commits:
                                raise ValueError(
                                    f"txn {start} already committed; "
                                    "cannot abort"
                                )
                            ct_aborted.add(start)
                        else:
                            record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    conflict_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = "ww-conflict"
                        fut._row = conflict_row
                    if res_append is not None:
                        res_append(
                            CommitResult(
                                False, start,
                                reason="ww-conflict",
                                conflict_row=conflict_row,
                            )
                        )
                    continue
                # Phase 2: dangerous-structure check.  Aggregate screen
                # first; on a hit, scan the live footprints pairwise
                # (exactly the sequential :meth:`_edges` semantics,
                # restricted by the deferred-prune liveness predicate).
                t_in = t_out = False
                if agg_read_isdisjoint(ws) and agg_write_isdisjoint(rs):
                    gains = no_gains
                else:
                    gains = {}
                    for c in recent:
                        if (
                            c.idx >= clear_from
                            and c.commit_ts > floor
                            and c.commit_ts > start
                        ):
                            gain_in = gain_out = False
                            if not c.read_set.isdisjoint(ws):
                                t_in = True  # edge C -> T
                                gain_out = True
                            if not c.write_set.isdisjoint(rs):
                                t_out = True  # edge T -> C
                                gain_in = True
                            if gain_in or gain_out:
                                gains[c.idx] = [c, gain_in, gain_out]
                pivot_reason = None
                if t_in and t_out:
                    pivot_reason = "ssi-pivot-self"
                else:
                    for c, g_in, g_out in gains.values():
                        if (c.in_conflict or g_in) and (
                            c.out_conflict or g_out
                        ):
                            pivot_reason = "ssi-pivot-neighbour"
                            break
                if pivot_reason is not None:
                    try:
                        if fast_ct:
                            if start in ct_commits:
                                raise ValueError(
                                    f"txn {start} already committed; "
                                    "cannot abort"
                                )
                            ct_aborted.add(start)
                        else:
                            record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    pivots += 1
                    conflict_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = pivot_reason
                    if res_append is not None:
                        res_append(
                            CommitResult(False, start, reason=pivot_reason)
                        )
                    continue
                # Safe: commit (inlined tso.next with the reservation
                # protocol), install, retain and index the footprint.
                if nxt > reserved:
                    tso._next = nxt
                    tso._reserve()
                    reserved = tso._reserved_until
                cts = nxt
                nxt += 1
                issued += 1
                lc_update(fromkeys(ws, cts))
                rows_updated += len(ws)
                try:
                    if fast_ct:
                        if cts <= start:
                            raise ValueError(
                                f"commit_ts {cts} must exceed start_ts {start}"
                            )
                        if start in ct_aborted:
                            raise ValueError(
                                f"txn {start} already aborted; cannot commit"
                            )
                        ct_commits[start] = cts
                    else:
                        record_commit(start, cts)
                except Exception as exc:
                    # Same partial effects as the unbatched path, which
                    # installs and consumes Tc before its commit-table
                    # write raises.
                    errors.append((start, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                commits += 1
                pc_append((start, cts, ws))
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = cts
                if res_append is not None:
                    res_append(CommitResult(True, start, commit_ts=cts))
                for c, g_in, g_out in gains.values():
                    if g_in:
                        c.in_conflict = True
                    if g_out:
                        c.out_conflict = True
                footprint = committed_txn(
                    start, cts, rs, ws,
                    in_conflict=t_in, out_conflict=t_out, idx=len(recent),
                )
                recent_append(footprint)
                agg_read_update(rs)
                agg_write_update(ws)
                # Deferred prune: only advance the liveness predicate.
                if not active:
                    clear_from = len(recent)
                else:
                    horizon = min(active)
                    if horizon > floor:
                        floor = horizon
        finally:
            tso._next = nxt
            tso._issued += issued
            self.pivot_aborts += pivots
            st = self.stats
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.rows_checked += rows_checked
            st.rows_updated += rows_updated
            # Materialize the deferred prunes exactly once.
            if clear_from >= len(recent):
                self._recent = []
            elif clear_from or floor:
                self._recent = [
                    c
                    for i, c in enumerate(recent)
                    if i >= clear_from and c.commit_ts > floor
                ]
        return (
            commits + ro_commits,
            conflict_aborts + client_aborts,
            rows_checked,
            rows_updated,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _edges(
        self, request: CommitRequest
    ) -> Tuple[bool, bool, List[Tuple[_CommittedTxn, bool, bool]]]:
        """rw-edges between the committing txn and concurrent committed
        txns.  Returns (T has in-edge, T has out-edge, per-neighbour
        (txn, neighbour gains in, neighbour gains out))."""
        t_in = t_out = False
        neighbours: List[Tuple[_CommittedTxn, bool, bool]] = []
        for committed in self._recent:
            # concurrency: C committed after T started (T could not see
            # C's writes; C could not have seen T's).
            if committed.commit_ts <= request.start_ts:
                continue
            c_gains_in = c_gains_out = False
            if committed.read_set & request.write_set:
                t_in = True          # edge C -> T
                c_gains_out = True
            if request.read_set & committed.write_set:
                t_out = True         # edge T -> C
                c_gains_in = True
            if c_gains_in or c_gains_out:
                neighbours.append((committed, c_gains_in, c_gains_out))
        return t_in, t_out, neighbours

    def _abort_pivot(self, request: CommitRequest, reason: str) -> CommitResult:
        self.stats.aborts += 1
        self.stats.conflict_aborts += 1
        self.commit_table.record_abort(request.start_ts)
        self._log("abort", (request.start_ts,))
        return CommitResult(False, request.start_ts, reason=reason)

    def _prune(self) -> None:
        """Drop footprints no active transaction can be concurrent with."""
        if not self._active_starts:
            horizon: Optional[int] = None
        else:
            horizon = min(self._active_starts)
        if horizon is None:
            self._recent.clear()
            return
        self._recent = [c for c in self._recent if c.commit_ts > horizon]

    @property
    def retained_footprints(self) -> int:
        return len(self._recent)
