"""Analytical-traffic support: the paper's §5.2 future-work, implemented.

§5.2 identifies two problems with large (analytical) read sets in the
lock-free scheme, and sketches both fixes:

1. *"the read set could become very large and submitting that to the
   status oracle could be expensive.  To address [this], analytical
   transactions could submit to the status oracle a compact,
   over-approximated representation of the read set, e.g., table name
   and row ranges."* — :class:`RangeReadSet` is that representation: a
   set of half-open row ranges, and :class:`AnalyticalOracle` checks a
   range against ``lastCommit`` without enumerating its rows.

2. *"if a mechanism could ensure that the computed statistics by the
   analytical traffic are not used by OLTP transactions, which is
   normally the case, their commit will not affect the OLTP traffic and
   could be entirely skipped."* — committing with
   ``isolation="skip-check"`` records the analytical transaction's
   outputs under a sandboxed namespace and bypasses conflict detection.

Over-approximation is sound for WSI: a range covering more rows than
were actually read can only *add* aborts (false positives), never admit
a read-write conflict — the same one-sidedness argument as Algorithm 3's
``Tmax``, and property-tested the same way.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.status_oracle import (
    CommitRequest,
    CommitResult,
    WriteSnapshotIsolationOracle,
)


@dataclass(frozen=True)
class RowRange:
    """A half-open range ``[start, end)`` of integer row keys."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty range [{self.start}, {self.end})")

    def contains(self, row: int) -> bool:
        return self.start <= row < self.end

    def overlaps(self, other: "RowRange") -> bool:
        return self.start < other.end and other.start < self.end

    @property
    def width(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return f"[{self.start}, {self.end})"


class RangeReadSet:
    """A compact, over-approximated read set: disjoint sorted ranges.

    Adding overlapping or adjacent ranges coalesces them, so the
    representation stays at most O(#disjoint ranges) regardless of how
    many rows the analytical transaction scanned — this is the §5.2
    compactness property (a full-table scan is exactly one range).
    """

    def __init__(self, ranges: Iterable[RowRange] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        for r in ranges:
            self.add(r)

    def add(self, new: RowRange) -> None:
        """Insert a range, coalescing overlaps and adjacency."""
        idx = bisect.bisect_left(self._starts, new.start)
        start, end = new.start, new.end
        # merge with the predecessor if it touches us
        if idx > 0 and self._ends[idx - 1] >= start:
            idx -= 1
            start = min(start, self._starts[idx])
            end = max(end, self._ends[idx])
            del self._starts[idx]
            del self._ends[idx]
        # swallow successors we cover or touch
        while idx < len(self._starts) and self._starts[idx] <= end:
            end = max(end, self._ends[idx])
            del self._starts[idx]
            del self._ends[idx]
        self._starts.insert(idx, start)
        self._ends.insert(idx, end)

    def add_row(self, row: int) -> None:
        self.add(RowRange(row, row + 1))

    def ranges(self) -> List[RowRange]:
        return [RowRange(s, e) for s, e in zip(self._starts, self._ends)]

    def contains(self, row: int) -> bool:
        idx = bisect.bisect_right(self._starts, row) - 1
        return idx >= 0 and row < self._ends[idx]

    @property
    def range_count(self) -> int:
        return len(self._starts)

    @property
    def covered_rows(self) -> int:
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self.ranges()) + "}"


@dataclass(frozen=True)
class AnalyticalCommitRequest:
    """Commit request carrying a range read set instead of row ids."""

    start_ts: int
    read_ranges: Tuple[RowRange, ...]
    write_set: FrozenSet[int] = frozenset()
    skip_check: bool = False  # §5.2's "entirely skipped" mode


class AnalyticalOracle(WriteSnapshotIsolationOracle):
    """WSI oracle extended with range-based read-set checks.

    Inherits Algorithm 2 unchanged for OLTP requests; adds
    :meth:`commit_analytical` for requests whose read set is expressed
    as row ranges.  The range check scans ``lastCommit`` keys inside the
    range via a sorted index maintained incrementally, so a full-table
    analytical scan costs O(written rows) instead of O(table size).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sorted_rows: List[int] = []  # integer rows only, sorted
        self.stats_analytical_commits = 0
        self.stats_analytical_aborts = 0
        self.stats_skipped_checks = 0

    # keep the sorted index in sync with lastCommit
    def _install(self, rows, commit_ts: int) -> None:
        for row in rows:
            if row not in self._last_commit and isinstance(row, int):
                bisect.insort(self._sorted_rows, row)
        super()._install(rows, commit_ts)

    def _max_lastcommit_in(self, row_range: RowRange) -> Optional[int]:
        lo = bisect.bisect_left(self._sorted_rows, row_range.start)
        hi = bisect.bisect_left(self._sorted_rows, row_range.end)
        best: Optional[int] = None
        for idx in range(lo, hi):
            ts = self._last_commit.get(self._sorted_rows[idx])
            if ts is not None and (best is None or ts > best):
                best = ts
        return best

    def commit_analytical(self, request: AnalyticalCommitRequest) -> CommitResult:
        """Process an analytical commit (§5.2).

        ``skip_check=True`` models statistics-producing transactions
        whose outputs OLTP never reads: they commit unconditionally and
        do not update ``lastCommit`` (their writes cannot conflict with
        anything by assumption), so they cost the oracle nothing.
        """
        if request.skip_check:
            commit_ts = self._tso.next()
            self.commit_table.record_commit(request.start_ts, commit_ts)
            self.stats.commits += 1
            self.stats_analytical_commits += 1
            self.stats_skipped_checks += 1
            return CommitResult(True, request.start_ts, commit_ts=commit_ts)

        for row_range in request.read_ranges:
            worst = self._max_lastcommit_in(row_range)
            if worst is not None and worst > request.start_ts:
                self.stats.aborts += 1
                self.stats.conflict_aborts += 1
                self.stats_analytical_aborts += 1
                self.commit_table.record_abort(request.start_ts)
                return CommitResult(
                    False,
                    request.start_ts,
                    reason="rw-conflict",
                    conflict_row=row_range,
                )
        commit_ts = self._tso.next()
        self._install(request.write_set, commit_ts)
        self.stats.rows_updated += len(request.write_set)
        self.commit_table.record_commit(request.start_ts, commit_ts)
        self.stats.commits += 1
        self.stats_analytical_commits += 1
        return CommitResult(True, request.start_ts, commit_ts=commit_ts)
