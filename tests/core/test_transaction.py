"""Unit tests for the transaction client API."""

import pytest

from repro.core import create_system
from repro.core.errors import (
    AbortException,
    ConflictAbort,
    InvalidTransactionState,
)
from repro.core.transaction import TxnState


class TestBasicOperations:
    def test_write_then_read_own_write(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.write("x", 42)
        assert txn.read("x") == 42
        txn.commit()

    def test_committed_value_visible_to_later_txn(self, any_system):
        t1 = any_system.manager.begin()
        t1.write("x", "hello")
        t1.commit()
        t2 = any_system.manager.begin()
        assert t2.read("x") == "hello"

    def test_uncommitted_value_invisible(self, any_system):
        t1 = any_system.manager.begin()
        t1.write("x", "dirty")
        t2 = any_system.manager.begin()
        assert t2.read("x") is None  # no dirty reads

    def test_snapshot_ignores_later_commits(self, any_system):
        t0 = any_system.manager.begin()
        t0.write("x", "old")
        t0.commit()
        reader = any_system.manager.begin()
        writer = any_system.manager.begin()
        writer.write("x", "new")
        writer.commit()
        # reader's snapshot predates writer's commit
        assert reader.read("x") == "old"

    def test_read_default(self, wsi_system):
        txn = wsi_system.manager.begin()
        assert txn.read("missing") is None
        assert txn.read("missing2", default=0) == 0

    def test_read_many(self, wsi_system):
        t1 = wsi_system.manager.begin()
        t1.write("a", 1)
        t1.write("b", 2)
        t1.commit()
        t2 = wsi_system.manager.begin()
        assert t2.read_many(["a", "b", "c"]) == {"a": 1, "b": 2, "c": None}

    def test_delete_makes_row_unreadable(self, any_system):
        t1 = any_system.manager.begin()
        t1.write("x", 1)
        t1.commit()
        t2 = any_system.manager.begin()
        t2.delete("x")
        assert t2.read("x") is None  # sees own delete
        t2.commit()
        t3 = any_system.manager.begin()
        assert t3.read("x") is None

    def test_old_snapshot_still_sees_predeleted_value(self, any_system):
        t1 = any_system.manager.begin()
        t1.write("x", 1)
        t1.commit()
        reader = any_system.manager.begin()
        deleter = any_system.manager.begin()
        deleter.delete("x")
        deleter.commit()
        assert reader.read("x") == 1


class TestReadWriteSets:
    def test_reads_tracked(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.read("a")
        txn.read("b")
        assert txn.read_set == {"a", "b"}

    def test_untracked_read(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.read("a", track=False)
        assert txn.read_set == set()

    def test_writes_tracked(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.write("a", 1)
        txn.delete("b")
        assert txn.write_set == {"a", "b"}

    def test_footprint_export(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.read("r")
        txn.write("w", 1)
        txn.commit()
        fp = txn.footprint()
        assert fp.read_set == frozenset({"r"})
        assert fp.write_set == frozenset({"w"})
        assert fp.commit_ts == txn.commit_ts


class TestCommitAbort:
    def test_commit_returns_timestamp(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.write("x", 1)
        commit_ts = txn.commit()
        assert commit_ts > txn.start_ts
        assert txn.state is TxnState.COMMITTED

    def test_read_only_commit_is_start_ts(self, any_system):
        txn = any_system.manager.begin()
        txn.read("x")
        assert txn.commit() == txn.start_ts

    def test_conflict_abort_raises_and_cleans_up(self, wsi_system):
        t1 = wsi_system.manager.begin()
        t2 = wsi_system.manager.begin()
        t2.read("x")
        t2.write("y", 1)
        t1.write("x", 1)
        t1.commit()
        with pytest.raises(ConflictAbort):
            t2.commit()
        assert t2.state is TxnState.ABORTED
        # t2's write to y must be gone from the store
        t3 = wsi_system.manager.begin()
        assert t3.read("y") is None

    def test_client_abort_cleans_up(self, any_system):
        txn = any_system.manager.begin()
        txn.write("x", "junk")
        txn.abort()
        assert txn.state is TxnState.ABORTED
        t2 = any_system.manager.begin()
        assert t2.read("x") is None

    def test_operations_after_commit_rejected(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.read("x")
        with pytest.raises(InvalidTransactionState):
            txn.write("x", 1)
        with pytest.raises(InvalidTransactionState):
            txn.commit()

    def test_operations_after_abort_rejected(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.abort()
        with pytest.raises(InvalidTransactionState):
            txn.read("x")


class TestContextManager:
    def test_clean_exit_commits(self, wsi_system):
        with wsi_system.manager.begin() as txn:
            txn.write("x", 5)
        assert txn.state is TxnState.COMMITTED
        assert wsi_system.manager.begin().read("x") == 5

    def test_exception_aborts_and_propagates(self, wsi_system):
        with pytest.raises(RuntimeError):
            with wsi_system.manager.begin() as txn:
                txn.write("x", 5)
                raise RuntimeError("application error")
        assert txn.state is TxnState.ABORTED
        assert wsi_system.manager.begin().read("x") is None

    def test_explicit_commit_inside_block(self, wsi_system):
        with wsi_system.manager.begin() as txn:
            txn.write("x", 1)
            txn.commit()
        assert txn.state is TxnState.COMMITTED


class TestRetryLoop:
    def test_run_retries_conflicts(self, wsi_system):
        manager = wsi_system.manager
        t0 = manager.begin()
        t0.write("counter", 0)
        t0.commit()

        # Set up a conflict on first attempt only.
        attempts = []

        def increment(txn):
            attempts.append(txn.start_ts)
            value = txn.read("counter")
            if len(attempts) == 1:
                # interleave a conflicting writer before our commit
                other = manager.begin()
                other.write("counter", 100)
                other.commit()
            txn.write("counter", value + 1)

        manager.run(increment)
        assert len(attempts) == 2  # first aborted, second succeeded
        assert manager.begin().read("counter") == 101

    def test_run_gives_up_after_retries(self, wsi_system):
        manager = wsi_system.manager

        def always_conflicts(txn):
            txn.read("hot")
            other = manager.begin()
            other.write("hot", txn.start_ts)
            other.commit()
            txn.write("out", 1)

        with pytest.raises(AbortException):
            manager.run(always_conflicts, retries=3)

    def test_run_returns_value(self, wsi_system):
        result = wsi_system.manager.run(lambda txn: "value")
        assert result == "value"


class TestRepeatableReads:
    def test_same_row_reads_stable_within_txn(self, any_system):
        t0 = any_system.manager.begin()
        t0.write("x", "v1")
        t0.commit()
        reader = any_system.manager.begin()
        first = reader.read("x")
        writer = any_system.manager.begin()
        writer.write("x", "v2")
        writer.commit()
        second = reader.read("x")
        assert first == second == "v1"  # no fuzzy reads
