"""E15 (ablation) — oracle recovery: WAL length vs takeover cost.

Appendix A's availability story rests on a fresh status-oracle instance
recreating its memory state "from the write-ahead log".  The cost of
that replay is the system's unavailability window after an oracle crash.
This ablation grows the committed history, crashes the active oracle,
and measures (a) records replayed, (b) wall-clock replay time, and
(c) correctness of the recovered state — confirming replay cost is
linear in durable history, which is why the real Omid snapshots and
truncates its WAL.
"""

import time

import pytest

from repro.bench import format_table
from repro.coord import OracleReplicaSet
from repro.core.status_oracle import CommitRequest
from repro.workload import complex_workload


def run_recovery_sweep():
    sizes = [1_000, 5_000, 20_000]
    results = []
    for size in sizes:
        replica_set = OracleReplicaSet(num_hosts=2, level="wsi")
        wl = complex_workload(distribution="uniform", keyspace=1_000_000, seed=101)
        committed = 0
        for spec in wl.stream(size):
            ts = replica_set.begin()
            result = replica_set.commit(
                CommitRequest(
                    ts,
                    write_set=frozenset(spec.write_rows),
                    read_set=frozenset(spec.read_rows),
                )
            )
            committed += result.committed
        replica_set.wal.flush()
        started = time.perf_counter()
        replica_set.kill_active()
        new_host = replica_set.active_host()
        replay_seconds = time.perf_counter() - started
        # correctness probe: conflict state intact after takeover
        old_oracle_rows = new_host.oracle.lastcommit_size
        results.append(
            {
                "txns": size,
                "committed": committed,
                "replayed": new_host.recovered_records,
                "seconds": replay_seconds,
                "lastcommit_rows": old_oracle_rows,
            }
        )
    return results


@pytest.mark.figure("recovery")
def test_e15_recovery_cost_linear_in_wal(benchmark, print_header):
    results = benchmark.pedantic(run_recovery_sweep, rounds=1, iterations=1)
    print_header("E15 — oracle failover: WAL length vs recovery cost (Appendix A)")
    print(
        format_table(
            ["txns", "committed", "records replayed", "replay seconds", "lastCommit rows"],
            [
                (
                    r["txns"],
                    r["committed"],
                    r["replayed"],
                    f"{r['seconds']:.3f}",
                    r["lastcommit_rows"],
                )
                for r in results
            ],
        )
    )
    # Replay volume grows with history...
    replayed = [r["replayed"] for r in results]
    assert replayed[0] < replayed[1] < replayed[2]
    # ...roughly linearly: 20x the transactions => within [8x, 40x] the
    # records (abort records and ts-reservations add slack).
    assert 8 < replayed[2] / replayed[0] < 40
    # The recovered oracle has real state, not an empty map.
    assert all(r["lastcommit_rows"] > 0 for r in results)
    # And takeover stays sub-second at this scale (the practical
    # justification for bounded WALs in production).
    assert all(r["seconds"] < 5.0 for r in results)
