"""AST-based invariant linter: the repo-specific passes behind ``make lint``.

Each pass encodes an invariant this codebase has already been burned by
(see the package docstring for the catalogue).  The engine is
deliberately small: parse each module once, hand the tree + comment
annotations to every pass in scope, collect :class:`LintFinding`
records, and apply line-level suppressions.

Annotations (ordinary comments, read by the engine):

``# lint: skip=<pass>[,<pass>...] [-- reason]``
    Suppress the named pass(es) on this line.  ``skip=all`` suppresses
    every pass.  Every suppression in ``src/`` should carry a
    ``-- reason``: it marks a *reviewed* exception, not an escape hatch.

``# guarded-by: <lock>``
    On an attribute-assignment line (``self._pending = []``): declares
    that the assigned attribute is hot shared state owned by ``<lock>``.
    The ``guarded-by`` pass then requires every mutation of that
    attribute in the module to sit lexically inside ``with <lock>:``.

``# guarded-by: <attr> -> <lock>``
    Standalone form for state declared elsewhere (e.g. the per-shard
    ``_last_commit`` dicts owned by ``_shard_locks`` in
    ``core/partitioned.py``).

Pass scoping: ``deterministic-protocol`` only audits the decision-path
packages (``core/``, ``percolator/``, ``ssi/``); the other passes run
over the whole tree.  ``time.sleep``/``time.monotonic``/
``time.perf_counter`` are allowed everywhere — latency modeling and
cadence clocks are policy inputs, not decision inputs; ``time.time()``
and friends in a decision path are what made batches non-replayable.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintFinding",
    "ModuleContext",
    "ALL_PASSES",
    "lint_file",
    "lint_source",
    "lint_tree",
]

_SKIP_RE = re.compile(r"#\s*lint:\s*skip=([A-Za-z0-9_,\-]+|all)")
_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w]*(?:\s*->\s*[A-Za-z_][\w]*)?)")

#: Method names whose call mutates the receiver (dict/list/set surface
#: the hot-state containers actually use).
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "update",
        "add",
        "setdefault",
        "sort",
    }
)


@dataclass(frozen=True, order=True)
class LintFinding:
    """One violation: where, which pass, and what to do instead."""

    path: str
    line: int
    col: int
    pass_name: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.pass_name}] {self.message}"


@dataclass
class ModuleContext:
    """Parsed module plus the comment annotations the passes consume."""

    path: str
    relpath: str
    source: str
    tree: ast.Module
    #: line -> pass names suppressed there ({"all"} suppresses all).
    skips: Dict[int, Set[str]] = field(default_factory=dict)
    #: comment-only lines (a skip here also covers the statement below).
    comment_lines: Set[int] = field(default_factory=set)
    #: guarded attr -> owning lock name (module-scoped).
    guards: Dict[str, str] = field(default_factory=dict)
    #: lines carrying a guarded-by declaration (exempt from the pass).
    guard_decl_lines: Set[int] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, source: str, relpath: Optional[str] = None) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, relpath=relpath or os.path.basename(path), source=source, tree=tree)
        trailing_locks: Dict[int, str] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            if line.lstrip().startswith("#"):
                ctx.comment_lines.add(lineno)
            m = _SKIP_RE.search(line)
            if m:
                ctx.skips.setdefault(lineno, set()).update(
                    name.strip() for name in m.group(1).split(",")
                )
            g = _GUARD_RE.search(line)
            if g:
                spec = g.group(1)
                ctx.guard_decl_lines.add(lineno)
                if "->" in spec:
                    attr, lock = (part.strip() for part in spec.split("->", 1))
                    ctx.guards[attr] = lock
                else:
                    trailing_locks[lineno] = spec.strip()
        if trailing_locks:
            # Resolve trailing declarations: the attribute assigned on
            # that line is the declared state.
            for node in ast.walk(tree):
                if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.lineno in trailing_locks:
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Attribute):
                            ctx.guards[target.attr] = trailing_locks[node.lineno]
        return ctx

    def suppressed(self, lineno: int, pass_name: str) -> bool:
        """True when a skip covers this line.

        A ``# lint: skip=`` annotation suppresses on its own line, or —
        when written as a standalone comment — on the first statement
        below its contiguous comment block.
        """

        def matches(line: int) -> bool:
            names = self.skips.get(line)
            return bool(names) and (pass_name in names or "all" in names)

        if matches(lineno):
            return True
        line = lineno - 1
        while line in self.comment_lines:
            if matches(line):
                return True
            line -= 1
        return False


# ----------------------------------------------------------------------
# Pass implementations.  Each yields raw findings; the engine applies
# suppression afterwards so `# lint: skip=` works uniformly.
# ----------------------------------------------------------------------


def _walk_with_func_stack(
    node: ast.AST, stack: Tuple[str, ...] = ()
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """ast.walk that also yields the enclosing-function-name stack."""
    yield node, stack
    child_stack = stack
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        child_stack = stack + (node.name,)
    for child in ast.iter_child_nodes(node):
        yield from _walk_with_func_stack(child, child_stack)


def check_no_builtin_hash(ctx: ModuleContext) -> Iterator[LintFinding]:
    """Routing/sharding must never use the salted builtin ``hash()``.

    PR 3's bug class: builtin ``hash`` is salted per-process, so any
    placement derived from it disagrees across processes and restarts.
    ``__hash__`` implementations are exempt — delegating to builtin
    hashing for in-process containers is exactly what they are for.
    """
    for node, funcs in _walk_with_func_stack(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and "__hash__" not in funcs
        ):
            yield LintFinding(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-builtin-hash",
                "builtin hash() is process-salted; use "
                "repro.core.sharding.stable_hash for any placement/routing",
            )


_WALLCLOCK_TIME_ATTRS = frozenset({"time", "time_ns"})
_WALLCLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})


def check_deterministic_protocol(ctx: ModuleContext) -> Iterator[LintFinding]:
    """Decision paths must be deterministic and replayable.

    WAL replay and the cross-engine equivalence suites both assume a
    batch re-decides identically: no wall-clock reads, no randomness,
    no iteration order borrowed from a hash-salted ``set``.
    """

    def finding(node: ast.AST, message: str) -> LintFinding:
        return LintFinding(
            ctx.path, node.lineno, node.col_offset, "deterministic-protocol", message
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "time" and func.attr in _WALLCLOCK_TIME_ATTRS:
                    yield finding(
                        node,
                        f"time.{func.attr}() in a decision path breaks replay; "
                        "take timestamps from the oracle/TSO",
                    )
                elif base.id == "datetime" and func.attr in _WALLCLOCK_DT_ATTRS:
                    yield finding(
                        node,
                        f"datetime.{func.attr}() is a wall-clock read; decision "
                        "paths must be replayable",
                    )
                elif base.id == "os" and func.attr == "urandom":
                    yield finding(node, "os.urandom() in a decision path is nondeterministic")
                elif base.id == "random":
                    yield finding(
                        node,
                        f"random.{func.attr}() in a decision path is nondeterministic; "
                        "inject seeded randomness from the workload layer",
                    )
                elif base.id == "uuid" and func.attr in ("uuid1", "uuid4"):
                    yield finding(node, f"uuid.{func.attr}() is nondeterministic")
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            mod = node.module if isinstance(node, ast.ImportFrom) else None
            names = [alias.name for alias in node.names]
            if mod == "random" or "random" in names:
                yield finding(
                    node,
                    "importing random into a decision-path module; seeded "
                    "randomness belongs to the workload layer",
                )
        else:
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if isinstance(it, ast.Set) or (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in ("set", "frozenset")
                ):
                    yield finding(
                        it,
                        "iterating a set directly is hash-order-dependent; "
                        "sort it (the repo convention: `for x in sorted(...)`)",
                    )


class _GuardedByVisitor:
    """Checks mutations of declared hot state against the owning lock.

    Tracks the lexical ``with`` stack and the function scope chain so
    one-hop local bindings resolve: ``lock = self._shard_locks[pid]``
    followed by ``with lock:`` counts as holding ``_shard_locks``, and
    ``lc = partition._last_commit`` followed by ``lc[row] = ts`` counts
    as mutating ``_last_commit``.
    """

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: List[LintFinding] = []
        # Scope chain of name->value-expr assignment maps (module first,
        # innermost function last); closures see enclosing bindings.
        self._scopes: List[Dict[str, ast.expr]] = []
        # Source text of every lexically-enclosing with-item.
        self._withs: List[str] = []

    # -- name/alias resolution ------------------------------------------

    def _lookup(self, name: str) -> Optional[ast.expr]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _guarded_attr_of(self, node: ast.expr) -> Optional[str]:
        """The declared attr this expression denotes, if any.

        Direct (``x._last_commit``) or one local hop
        (``lc = x._last_commit``; ``lc``).
        """
        if isinstance(node, ast.Attribute) and node.attr in self.ctx.guards:
            return node.attr
        if isinstance(node, ast.Name):
            bound = self._lookup(node.id)
            if (
                bound is not None
                and isinstance(bound, ast.Attribute)
                and bound.attr in self.ctx.guards
            ):
                return bound.attr
        return None

    def _holding(self, lock: str) -> bool:
        pattern = re.compile(rf"\b{re.escape(lock)}\b")
        for text in self._withs:
            if pattern.search(text):
                return True
        return False

    def _with_item_text(self, expr: ast.expr) -> str:
        text = ast.unparse(expr)
        if isinstance(expr, ast.Name):
            bound = self._lookup(expr.id)
            if bound is not None:
                text += " = " + ast.unparse(bound)
        return text

    # -- scope bookkeeping ----------------------------------------------

    def _collect_assignments(self, func: ast.AST) -> Dict[str, ast.expr]:
        """Name->value for simple assigns in this function (not nested)."""
        bindings: Dict[str, ast.expr] = {}

        def scan(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(child, ast.Assign) and len(child.targets) == 1:
                    target = child.targets[0]
                    if isinstance(target, ast.Name):
                        bindings[target.id] = child.value
                scan(child)

        scan(func)
        return bindings

    # -- mutation detection ---------------------------------------------

    def _flag(self, node: ast.AST, attr: str) -> None:
        if node.lineno in self.ctx.guard_decl_lines:
            return
        lock = self.ctx.guards[attr]
        if self._holding(lock):
            return
        self.findings.append(
            LintFinding(
                self.ctx.path,
                node.lineno,
                node.col_offset,
                "guarded-by",
                f"mutation of {attr!r} outside `with {lock}:` "
                f"(declared `# guarded-by: {lock}`)",
            )
        )

    def _check_target(self, target: ast.expr, stmt: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr in self.ctx.guards:
            self._flag(stmt, target.attr)
        elif isinstance(target, ast.Subscript):
            attr = self._guarded_attr_of(target.value)
            if attr is not None:
                self._flag(stmt, attr)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, stmt)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = self._guarded_attr_of(func.value)
            if attr is not None:
                self._flag(node, attr)
        elif isinstance(func, ast.Name):
            # A name bound to a mutator of guarded state:
            # mu = self._pending.append; ...; mu(x)
            bound = self._lookup(func.id)
            if (
                bound is not None
                and isinstance(bound, ast.Attribute)
                and bound.attr in _MUTATORS
            ):
                attr = self._guarded_attr_of(bound.value)
                if attr is not None:
                    self._flag(node, attr)

    # -- traversal -------------------------------------------------------

    def run(self) -> List[LintFinding]:
        if not self.ctx.guards:
            return []
        self._scopes.append(self._collect_assignments(self.ctx.tree))
        self._visit_body(self.ctx.tree)
        return self.findings

    def _visit_body(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scopes.append(self._collect_assignments(node))
            self._visit_body(node)
            self._scopes.pop()
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            texts = [self._with_item_text(item.context_expr) for item in node.items]
            self._withs.extend(texts)
            self._visit_body(node)
            del self._withs[len(self._withs) - len(texts) :]
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._check_target(target, node)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            self._check_target(node.target, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_target(target, node)
        elif isinstance(node, ast.Call):
            self._check_call(node)
        self._visit_body(node)


def check_guarded_by(ctx: ModuleContext) -> Iterator[LintFinding]:
    """Declared hot state mutates only under its owning lock."""
    yield from _GuardedByVisitor(ctx).run()


_FUTURE_SLOTS = frozenset({"_result", "_done"})


def check_future_discipline(ctx: ModuleContext) -> Iterator[LintFinding]:
    """Futures settle only through the blessed resolve paths.

    PR 6's bug class: a crashed flush left ``CommitFuture``s in
    permanent ``DecisionPending`` because settlement state was poked
    directly from a path that could die midway.  Direct stores to
    ``._result``/``._done`` are therefore flagged everywhere; the
    handful of blessed settle sites carry reviewed
    ``# lint: skip=future-discipline`` annotations.
    """
    for node in ast.walk(ctx.tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr in _FUTURE_SLOTS:
                yield LintFinding(
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    "future-discipline",
                    f"direct write to `.{target.attr}`: futures settle only "
                    "through the blessed resolve paths (annotate reviewed "
                    "settle sites with `# lint: skip=future-discipline`)",
                )


def check_no_bare_assert(ctx: ModuleContext) -> Iterator[LintFinding]:
    """Protocol code never relies on ``assert`` — it vanishes under -O."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assert):
            yield LintFinding(
                ctx.path,
                node.lineno,
                node.col_offset,
                "no-bare-assert",
                "bare assert vanishes under `python -O`; raise "
                "repro.core.errors.InvariantViolation (or a more specific "
                "typed error) instead",
            )


@dataclass(frozen=True)
class LintPass:
    name: str
    check: object  # Callable[[ModuleContext], Iterator[LintFinding]]
    #: relpath prefixes (POSIX, relative to the repro package) this pass
    #: audits; ("",) means the whole tree.
    scope: Tuple[str, ...] = ("",)

    def in_scope(self, relpath: str) -> bool:
        return any(relpath.startswith(prefix) for prefix in self.scope)


ALL_PASSES: Tuple[LintPass, ...] = (
    LintPass("no-builtin-hash", check_no_builtin_hash),
    LintPass(
        "deterministic-protocol",
        check_deterministic_protocol,
        scope=("core/", "percolator/", "ssi/"),
    ),
    LintPass("guarded-by", check_guarded_by),
    LintPass("future-discipline", check_future_discipline),
    LintPass("no-bare-assert", check_no_bare_assert),
)

_PASS_BY_NAME = {p.name: p for p in ALL_PASSES}


def _run_passes(
    ctx: ModuleContext, passes: Sequence[LintPass], scoped: bool
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for lint_pass in passes:
        if scoped and not lint_pass.in_scope(ctx.relpath):
            continue
        for finding in lint_pass.check(ctx):
            if not ctx.suppressed(finding.line, finding.pass_name):
                findings.append(finding)
    return sorted(findings)


def _resolve_passes(passes: Optional[Sequence[object]]) -> Sequence[LintPass]:
    if passes is None:
        return ALL_PASSES
    resolved: List[LintPass] = []
    for p in passes:
        resolved.append(_PASS_BY_NAME[p] if isinstance(p, str) else p)  # type: ignore[arg-type]
    return resolved


def lint_source(
    source: str,
    path: str = "<string>",
    passes: Optional[Sequence[object]] = None,
    relpath: Optional[str] = None,
) -> List[LintFinding]:
    """Lint source text with the given passes (all of them by default).

    Path scoping is *not* applied — callers linting a single blob get
    exactly the passes they asked for (this is what the fixture tests
    use).
    """
    ctx = ModuleContext.parse(path, source, relpath=relpath)
    return _run_passes(ctx, _resolve_passes(passes), scoped=False)


def lint_file(
    path: str,
    passes: Optional[Sequence[object]] = None,
) -> List[LintFinding]:
    """Lint one file with the given passes (unscoped; see lint_source)."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path=path, passes=passes)


def lint_tree(root: Optional[str] = None) -> List[LintFinding]:
    """Lint every ``*.py`` under ``root`` with path-scoped passes.

    ``root`` defaults to the installed ``repro`` package source tree —
    what ``python -m repro.analysis`` and ``make lint`` audit.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    findings: List[LintFinding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relpath = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            ctx = ModuleContext.parse(path, source, relpath=relpath)
            findings.extend(_run_passes(ctx, ALL_PASSES, scoped=True))
    return sorted(findings)
