"""Hypothesis properties: ``decide_batch ≡ sequential`` for every engine.

The batched frontend's load-bearing claim (see
``tests/server/test_equivalence_properties.py``) extended to the whole
engine family: for any random script of commit requests and client
aborts over a small row alphabet, deciding it in bulk — any batch
partitioning — must equal one ``commit()``/``abort()`` call per item in
batch order:

* every decision, commit timestamp, reason and conflict row;
* the commit table, ``OracleStats``, and the timestamp oracle's
  high-water marks;
* engine-private state that future decisions depend on — the status
  oracle's lastCommit map, Percolator's write column (and an empty lock
  column: no batch lock may outlive its flush), SSI's retained
  footprints with their conflict flags and ``pivot_aborts``.

Both runs pre-begin the same block of start timestamps so the scripts
see identical snapshots; SSI additionally needs those begins observed
(its prune horizon is the oldest active start), which ``begin()`` does
on both sides.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import ENGINE_KINDS, make_engine
from repro.core.status_oracle import CommitRequest

ROWS = ["r0", "r1", "r2", "r3", "r4", "r5", "r6"]


@st.composite
def scripts(draw):
    """A list of (reads, writes, client_abort) steps."""
    steps = []
    num = draw(st.integers(min_value=1, max_value=28))
    for _ in range(num):
        reads = frozenset(draw(st.sets(st.sampled_from(ROWS), max_size=3)))
        writes = frozenset(draw(st.sets(st.sampled_from(ROWS), max_size=3)))
        client_abort = draw(st.booleans()) and draw(st.booleans())  # ~25 %
        steps.append((reads, writes, client_abort))
    return steps


def build_items(engine, script):
    """Begin one start per step on ``engine`` and materialize the items."""
    items = []
    for reads, writes, client_abort in script:
        start = engine.begin()
        if client_abort:
            items.append(start)
        else:
            items.append(
                CommitRequest(start_ts=start, write_set=writes, read_set=reads)
            )
    return items


def run_sequential(engine, items):
    results = []
    for item in items:
        if isinstance(item, int):
            engine.abort(item)
            results.append(("client-abort", item))
        else:
            r = engine.commit(item)
            results.append((r.committed, r.commit_ts, r.reason, r.conflict_row))
    return results


def run_batched(engine, items, batch_bounds):
    results = []
    offset = 0
    bounds = list(batch_bounds)
    while offset < len(items):
        size = bounds.pop(0) if bounds else len(items) - offset
        chunk = items[offset:offset + max(1, size)]
        offset += len(chunk)
        for r in engine.decide_batch(chunk):
            if r.reason == "client-abort":
                results.append(("client-abort", r.start_ts))
            else:
                results.append((r.committed, r.commit_ts, r.reason, r.conflict_row))
    return results


def common_state(engine):
    return (
        dict(engine.commit_table._commits),
        set(engine.commit_table._aborted),
        dict(engine.stats.__dict__),
        engine.timestamp_oracle._next,
        engine.timestamp_oracle._issued,
    )


def private_state(kind, engine):
    if kind == "percolator":
        return dict(engine.store._writes), dict(engine.store._locks)
    if kind == "ssi":
        return (
            [
                (c.start_ts, c.commit_ts, c.read_set, c.write_set,
                 c.in_conflict, c.out_conflict)
                for c in engine._recent
            ],
            engine.pivot_aborts,
            set(engine._active_starts),
        )
    return dict(engine._last_commit)


@pytest.mark.parametrize("kind", ENGINE_KINDS)
@settings(max_examples=120, deadline=None)
@given(
    script=scripts(),
    batch_bounds=st.lists(
        st.integers(min_value=1, max_value=9), max_size=6
    ),
)
def test_decide_batch_equals_sequential(kind, script, batch_bounds):
    seq_engine = make_engine(kind)
    bat_engine = make_engine(kind)

    seq_items = build_items(seq_engine, script)
    bat_items = build_items(bat_engine, script)
    assert [getattr(i, "start_ts", i) for i in seq_items] == [
        getattr(i, "start_ts", i) for i in bat_items
    ]

    seq_results = run_sequential(seq_engine, seq_items)
    bat_results = run_batched(bat_engine, bat_items, batch_bounds)

    assert bat_results == seq_results
    assert common_state(bat_engine) == common_state(seq_engine)
    assert private_state(kind, bat_engine) == private_state(kind, seq_engine)
    if kind == "percolator":
        # No batch lock outlives its flush.
        assert not bat_engine.store._locks


@pytest.mark.parametrize("kind", ENGINE_KINDS)
@settings(max_examples=40, deadline=None)
@given(script=scripts())
def test_duplicate_client_abort_is_isolated(kind, script):
    """Protocol misuse inside a batch (aborting an already-committed
    transaction) errors that request only; the rest still decides, and
    the sequential path raises at the same call."""
    engine = make_engine(kind)
    start = engine.begin()
    assert engine.commit(
        CommitRequest(start_ts=start, write_set=frozenset(["r0"]))
    ).committed

    items = build_items(engine, script)
    items.insert(len(items) // 2, start)  # abort-after-commit misuse
    with pytest.raises(ValueError):
        engine.decide_batch(items)
    # Every other item was still decided: commits+aborts == len-1.
    decided = (
        engine.stats.commits + engine.stats.aborts - 1  # minus the seed commit
    )
    assert decided == len(items) - 1
