"""Property tests: the batched frontend is observationally equivalent to
the unbatched oracle fed the same requests in batch order.

This is the load-bearing claim of :mod:`repro.server` (see its package
docstring): batching changes *when* decisions are computed and persisted,
never *what* is decided.  For any random workload we drive a frontend
(random batch bound, interleaved begins/commits/aborts) while recording
the order in which it decided things, then replay exactly that order
against a fresh unbatched oracle of the same kind and compare:

* every commit/abort decision, commit timestamp, reason and conflict row
  (via :class:`CommitResult` equality);
* the final ``lastCommit`` map (including LRU order and ``Tmax`` for the
  bounded oracle);
* the commit table and the full ``OracleStats`` counters.

Covered backends: plain SI, plain WSI, the bounded (Tmax) oracle under
both policies, and the partitioned oracle.

The ``decide_batch`` properties below exercise the batch-decide engine
directly (no frontend): for every oracle kind, deciding a batch in one
bulk pass — including mid-batch conflict aborts, client aborts and
read-only requests — must equal one ``commit()``/``abort()`` call per
item, in results and in final state, and the single group-commit WAL
record must replay to the same state as the sequential per-record log.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.server import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL

ROWS = ["r0", "r1", "r2", "r3", "r4", "r5", "r6"]


@st.composite
def workload_scripts(draw):
    """A random script over a small row alphabet.

    Each entry opens a transaction with a read/write footprint, a submit
    ``gap`` (how many later begins happen before its request is
    submitted — this interleaves open transactions), and a flag marking
    it a client-initiated abort instead of a commit request.
    """
    steps = []
    num = draw(st.integers(min_value=1, max_value=24))
    for _ in range(num):
        reads = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        writes = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        gap = draw(st.integers(min_value=0, max_value=4))
        client_abort = draw(st.booleans()) and draw(st.booleans())  # ~25 %
        steps.append((frozenset(reads), frozenset(writes), gap, client_abort))
    return steps


def drive_frontend(oracle, script, max_batch, extra_flushes):
    """Run the script through a frontend; return the decision trace.

    The trace records, in the order the *frontend* acted on them:
    ``("begin", ts)`` when a start timestamp was served, and
    ``("commit"/"abort", request_or_ts, future)`` when a decision was
    computed at a flush.  Read-only fast-path commits are traced at
    submit time (they resolve immediately and touch no state).
    """
    frontend = OracleFrontend(oracle, max_batch=max_batch)
    trace = []
    by_start = {}  # start_ts -> ("commit", request) | ("abort", start_ts)
    # A count-trigger flush fires inside submit_*, so the lookup entry
    # must exist before the submission — hence keying by start timestamp.
    frontend.on_flush(
        lambda batch: trace.extend(
            by_start[f.start_ts] + (f,) for f in batch.futures
        )
    )
    pending = []  # (submit_deadline, request, client_abort)
    for step_idx, (reads, writes, gap, client_abort) in enumerate(script):
        start_ts = frontend.begin()
        trace.append(("begin", start_ts))
        request = CommitRequest(start_ts, write_set=writes, read_set=reads)
        pending.append([step_idx + gap, request, client_abort])
        for entry in list(pending):
            if entry[0] <= step_idx:
                pending.remove(entry)
                _submit(frontend, trace, by_start, entry)
        if step_idx in extra_flushes:
            frontend.flush()
    for entry in pending:
        _submit(frontend, trace, by_start, entry)
    frontend.flush()
    return trace


def _submit(frontend, trace, by_start, entry):
    _, request, client_abort = entry
    if client_abort:
        by_start[request.start_ts] = ("abort", request.start_ts)
        frontend.submit_abort(request.start_ts)
    else:
        by_start[request.start_ts] = ("commit", request)
        future = frontend.submit_commit(request)
        if future.done and future.batch is None:  # read-only fast path
            trace.append(("commit", request, future))


def replay_on_reference(reference, trace):
    """Feed the reference oracle the trace in frontend order, comparing
    each decision against the frontend's future."""
    for event in trace:
        if event[0] == "begin":
            assert reference.begin() == event[1]
        elif event[0] == "abort":
            _, start_ts, future = event
            reference.abort(start_ts)
            assert not future.committed
        else:
            _, request, future = event
            expected = reference.commit(request)
            assert expected == future.result(), (expected, future.result())


def assert_same_final_state(oracle, reference, check_lru=False):
    assert dict(oracle._last_commit) == dict(reference._last_commit)
    if check_lru:
        assert list(oracle._last_commit.items()) == list(
            reference._last_commit.items()
        )
        assert oracle.tmax == reference.tmax
    assert oracle.commit_table._commits == reference.commit_table._commits
    assert oracle.commit_table._aborted == reference.commit_table._aborted
    assert oracle.stats == reference.stats


@given(
    script=workload_scripts(),
    max_batch=st.integers(min_value=1, max_value=12),
    extra_flushes=st.sets(st.integers(min_value=0, max_value=23), max_size=3),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=120, deadline=None)
def test_plain_oracle_equivalence(script, max_batch, extra_flushes, level):
    oracle = make_oracle(level, wal=BookKeeperWAL())
    trace = drive_frontend(oracle, script, max_batch, extra_flushes)
    reference = make_oracle(level)
    replay_on_reference(reference, trace)
    assert_same_final_state(oracle, reference)


@given(
    script=workload_scripts(),
    max_batch=st.integers(min_value=1, max_value=12),
    max_rows=st.integers(min_value=1, max_value=6),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=120, deadline=None)
def test_bounded_oracle_equivalence(script, max_batch, max_rows, level):
    # A tiny lastCommit capacity forces evictions, so Tmax aborts and the
    # LRU order are genuinely exercised, not just the happy path.
    oracle = make_oracle(
        level, bounded=True, max_rows=max_rows, wal=BookKeeperWAL()
    )
    trace = drive_frontend(oracle, script, max_batch, set())
    reference = make_oracle(level, bounded=True, max_rows=max_rows)
    replay_on_reference(reference, trace)
    assert_same_final_state(oracle, reference, check_lru=True)
    if oracle.stats.tmax_aborts:
        assert reference.stats.tmax_aborts == oracle.stats.tmax_aborts


@given(
    script=workload_scripts(),
    max_batch=st.integers(min_value=1, max_value=12),
    num_partitions=st.integers(min_value=1, max_value=4),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=80, deadline=None)
def test_partitioned_oracle_equivalence(script, max_batch, num_partitions, level):
    oracle = PartitionedOracle(level=level, num_partitions=num_partitions)
    trace = drive_frontend(oracle, script, max_batch, set())
    reference = PartitionedOracle(level=level, num_partitions=num_partitions)
    replay_on_reference(reference, trace)
    for partition, ref_partition in zip(oracle.partitions, reference.partitions):
        assert partition._last_commit == ref_partition._last_commit
    assert oracle.commit_table._commits == reference.commit_table._commits
    assert oracle.commit_table._aborted == reference.commit_table._aborted
    assert oracle.stats == reference.stats
    assert oracle.cross_partition_commits == reference.cross_partition_commits


# ----------------------------------------------------------------------
# decide_batch ≡ sequential commit()/abort()
# ----------------------------------------------------------------------

@st.composite
def decision_batches(draw):
    """Batches of decision items: commit requests (some read-only — empty
    writes with or without reads) interleaved with client aborts."""
    batches = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        batch = []
        for _ in range(draw(st.integers(min_value=0, max_value=10))):
            reads = draw(st.sets(st.sampled_from(ROWS), max_size=3))
            writes = draw(st.sets(st.sampled_from(ROWS), max_size=3))
            client_abort = draw(st.booleans()) and draw(st.booleans())  # ~25 %
            batch.append((frozenset(reads), frozenset(writes), client_abort))
        batches.append(batch)
    return batches


def run_batched(oracle, batches):
    """Begin every member of a batch, then decide the batch in one call."""
    outcomes = []
    for batch in batches:
        items = []
        for reads, writes, client_abort in batch:
            start_ts = oracle.begin()
            if client_abort:
                items.append(start_ts)
            else:
                items.append(
                    CommitRequest(start_ts, write_set=writes, read_set=reads)
                )
        outcomes.extend(oracle.decide_batch(items))
    return outcomes


def run_sequential(oracle, batches):
    """Same begin schedule, but one commit()/abort() call per item."""
    from repro.core.status_oracle import CLIENT_ABORT, CommitResult

    outcomes = []
    for batch in batches:
        items = []
        for reads, writes, client_abort in batch:
            start_ts = oracle.begin()
            if client_abort:
                items.append(start_ts)
            else:
                items.append(
                    CommitRequest(start_ts, write_set=writes, read_set=reads)
                )
        for item in items:
            if isinstance(item, int):
                oracle.abort(item)
                outcomes.append(CommitResult(False, item, reason=CLIENT_ABORT))
            else:
                outcomes.append(oracle.commit(item))
    return outcomes


@given(
    batches=decision_batches(),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=120, deadline=None)
def test_decide_batch_plain_equivalence(batches, level):
    oracle = make_oracle(level)
    reference = make_oracle(level)
    assert run_batched(oracle, batches) == run_sequential(reference, batches)
    assert_same_final_state(oracle, reference)


@given(
    batches=decision_batches(),
    max_rows=st.integers(min_value=1, max_value=6),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=120, deadline=None)
def test_decide_batch_bounded_equivalence(batches, max_rows, level):
    oracle = make_oracle(level, bounded=True, max_rows=max_rows)
    reference = make_oracle(level, bounded=True, max_rows=max_rows)
    assert run_batched(oracle, batches) == run_sequential(reference, batches)
    assert_same_final_state(oracle, reference, check_lru=True)


def assert_same_partitioned_state(oracle, reference):
    for partition, ref_partition in zip(oracle.partitions, reference.partitions):
        assert partition._last_commit == ref_partition._last_commit
        assert partition.stats == ref_partition.stats
    assert oracle.commit_table._commits == reference.commit_table._commits
    assert oracle.commit_table._aborted == reference.commit_table._aborted
    assert oracle.stats == reference.stats
    assert oracle.cross_partition_commits == reference.cross_partition_commits
    assert oracle.cross_partition_aborts == reference.cross_partition_aborts
    assert oracle.single_partition_commits == reference.single_partition_commits
    assert oracle.single_partition_aborts == reference.single_partition_aborts


@given(
    batches=decision_batches(),
    num_partitions=st.integers(min_value=1, max_value=4),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=100, deadline=None)
def test_decide_batch_partitioned_equivalence(batches, num_partitions, level):
    oracle = PartitionedOracle(level=level, num_partitions=num_partitions)
    reference = PartitionedOracle(level=level, num_partitions=num_partitions)
    assert run_batched(oracle, batches) == run_sequential(reference, batches)
    assert_same_partitioned_state(oracle, reference)


# ----------------------------------------------------------------------
# mixed single/cross batches: the cross-partition batch protocol
# ----------------------------------------------------------------------
#
# Rows are integers constructed per target shard (stable_hash maps an
# integer to itself, so ``shard + k * PARTS`` lands exactly on
# ``shard``): each generated footprint is explicitly partition-aligned
# or explicitly spanning, so every batch genuinely mixes
# single-partition runs with cross-partition members — the shape the
# batch protocol decides with one bulk round per partition per flush.

PARTS = 3


@st.composite
def mixed_partition_batches(draw):
    batches = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        batch = []
        for _ in range(draw(st.integers(min_value=0, max_value=10))):
            client_abort = draw(st.booleans()) and draw(st.booleans())  # ~25 %
            if client_abort:
                batch.append((frozenset(), frozenset(), True))
                continue
            kind = draw(st.sampled_from(["aligned", "cross", "ro"]))
            if kind == "ro":
                reads = {
                    draw(st.integers(min_value=0, max_value=11))
                    for _ in range(draw(st.integers(min_value=0, max_value=2)))
                }
                batch.append((frozenset(reads), frozenset(), False))
                continue
            if kind == "aligned":
                shard = draw(st.integers(min_value=0, max_value=PARTS - 1))
                shards = [shard]
            else:
                shards = list(range(PARTS))
            rows = st.sampled_from(
                [s + k * PARTS for s in shards for k in range(4)]
            )
            writes = draw(st.sets(rows, min_size=1, max_size=4))
            reads = draw(st.sets(rows, max_size=4))
            batch.append((frozenset(reads), frozenset(writes), False))
        batches.append(batch)
    return batches


@given(
    batches=mixed_partition_batches(),
    level=st.sampled_from(["si", "wsi"]),
    bounded=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_decide_batch_mixed_footprints_plain_and_bounded(batches, level, bounded):
    # The same mixed single/cross workload must also decide identically
    # on the monolithic oracles (there the distinction is invisible —
    # which is the point: partitioning never changes decisions).
    kwargs = {"bounded": True, "max_rows": 5} if bounded else {}
    oracle = make_oracle(level, **kwargs)
    reference = make_oracle(level, **kwargs)
    assert run_batched(oracle, batches) == run_sequential(reference, batches)
    assert_same_final_state(oracle, reference, check_lru=bounded)


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([1, 2, PARTS, 5]),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=120, deadline=None)
def test_decide_batch_mixed_footprints_partitioned(
    batches, num_partitions, level
):
    oracle = PartitionedOracle(level=level, num_partitions=num_partitions)
    reference = PartitionedOracle(level=level, num_partitions=num_partitions)
    assert run_batched(oracle, batches) == run_sequential(reference, batches)
    assert_same_partitioned_state(oracle, reference)


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([2, PARTS]),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=60, deadline=None)
def test_decide_batch_cross_protocol_equals_per_request_fallback(
    batches, num_partitions, level
):
    # The preserved pre-protocol engine (benchmark E19's baseline) and
    # the batch protocol must agree on every decision and on the final
    # state.  The reported conflict *row* and the per-partition
    # rows-examined counts may legitimately differ: the fallback scans a
    # conflicting share in its share-request's frozenset order, the
    # protocol in footprint order, and a conflict stops either scan
    # early — which row stops it is scan-order detail, not decision.
    oracle = PartitionedOracle(level=level, num_partitions=num_partitions)
    fallback = PartitionedOracle(
        level=level, num_partitions=num_partitions, batch_cross=False
    )
    decisions = [
        (r.committed, r.start_ts, r.commit_ts, r.reason)
        for r in run_batched(oracle, batches)
    ]
    fallback_decisions = [
        (r.committed, r.start_ts, r.commit_ts, r.reason)
        for r in run_batched(fallback, batches)
    ]
    assert decisions == fallback_decisions
    for partition, fb_partition in zip(oracle.partitions, fallback.partitions):
        assert partition._last_commit == fb_partition._last_commit
    assert oracle.commit_table._commits == fallback.commit_table._commits
    assert oracle.commit_table._aborted == fallback.commit_table._aborted
    assert oracle.stats == fallback.stats
    assert oracle.cross_partition_commits == fallback.cross_partition_commits
    assert oracle.cross_partition_aborts == fallback.cross_partition_aborts
    assert oracle.single_partition_commits == fallback.single_partition_commits
    assert oracle.single_partition_aborts == fallback.single_partition_aborts


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([2, PARTS]),
    level=st.sampled_from(["si", "wsi"]),
    bad_positions=st.sets(st.integers(min_value=0, max_value=9), max_size=2),
)
@settings(max_examples=80, deadline=None)
def test_decide_batch_mid_batch_errors_isolated(
    batches, num_partitions, level, bad_positions
):
    # Commit-table protocol errors (aborting an already-committed
    # transaction) mid-batch must be isolated to the offending request:
    # the rest of the batch decides exactly as if the bad item were
    # skipped, and the first error re-raises afterwards — for the batch
    # protocol and the sequential path alike.
    oracle = PartitionedOracle(level=level, num_partitions=num_partitions)
    reference = PartitionedOracle(level=level, num_partitions=num_partitions)

    # Pre-commit one transaction on both oracles; aborting it later is
    # the protocol error injected mid-batch.
    committed_req = CommitRequest(
        oracle.begin(), write_set=frozenset([0, 1, PARTS])
    )
    assert oracle.commit(committed_req).committed
    ref_req = CommitRequest(
        reference.begin(), write_set=frozenset([0, 1, PARTS])
    )
    assert reference.commit(ref_req).committed
    bad_start = committed_req.start_ts

    for batch in batches:
        items, ref_items = [], []
        for i, (reads, writes, client_abort) in enumerate(batch):
            start = oracle.begin()
            ref_start = reference.begin()
            if i in bad_positions:
                items.append(bad_start)
                ref_items.append(bad_start)
            elif client_abort:
                items.append(start)
                ref_items.append(ref_start)
            else:
                items.append(
                    CommitRequest(start, write_set=writes, read_set=reads)
                )
                ref_items.append(
                    CommitRequest(ref_start, write_set=writes, read_set=reads)
                )
        expect_error = any(i < len(batch) for i in bad_positions)
        if expect_error:
            with pytest.raises(ValueError, match="already committed"):
                oracle.decide_batch(items)
        else:
            oracle.decide_batch(items)
        for item in ref_items:
            if isinstance(item, int):
                try:
                    reference.abort(item)
                except ValueError:
                    assert item == bad_start
            else:
                reference.commit(item)
    assert_same_partitioned_state(oracle, reference)


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([2, PARTS]),
    level=st.sampled_from(["si", "wsi"]),
    max_batch=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_partitioned_group_commit_wal_replay(
    batches, num_partitions, level, max_batch
):
    # Durability leg for the partitioned deployment: the frontend's
    # group-commit records over a mixed single/cross workload must
    # replay — on a *monolithic* oracle — to exactly the union of the
    # partitions' lastCommit shares and the same commit table.
    wal = BookKeeperWAL()
    oracle = PartitionedOracle(level=level, num_partitions=num_partitions)
    frontend = OracleFrontend(oracle, max_batch=max_batch, wal=wal)
    for batch in batches:
        for reads, writes, client_abort in batch:
            start = frontend.begin()
            if client_abort:
                frontend.submit_abort(start)
            else:
                frontend.submit_commit(
                    CommitRequest(start, write_set=writes, read_set=reads)
                )
        frontend.flush()
    wal.flush()
    recovered = make_oracle(level)
    recovered.recover_from(wal)
    union = {}
    for partition in oracle.partitions:
        union.update(partition._last_commit)
    assert dict(recovered._last_commit) == union
    assert recovered.commit_table._commits == oracle.commit_table._commits
    assert recovered.commit_table._aborted == oracle.commit_table._aborted
    # and the recovered oracle resumes timestamps above everything used
    assert recovered.begin() > max(
        [0]
        + list(oracle.commit_table._commits)
        + list(oracle.commit_table._commits.values())
    )


@given(
    batches=decision_batches(),
    bounded=st.booleans(),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=60, deadline=None)
def test_decide_batch_wal_replay_equivalence(batches, bounded, level):
    # Durability leg: one group-commit record per batch must replay to
    # exactly the state the sequential per-record WAL replays to.
    kwargs = {"bounded": True, "max_rows": 4} if bounded else {}
    batch_wal, seq_wal = BookKeeperWAL(), BookKeeperWAL()
    oracle = make_oracle(level, wal=batch_wal, **kwargs)
    reference = make_oracle(level, wal=seq_wal, **kwargs)
    assert run_batched(oracle, batches) == run_sequential(reference, batches)
    batch_wal.flush()
    seq_wal.flush()
    from_batch = make_oracle(level, **kwargs)
    from_batch.recover_from(batch_wal)
    from_seq = make_oracle(level, **kwargs)
    from_seq.recover_from(seq_wal)
    assert dict(from_batch._last_commit) == dict(from_seq._last_commit)
    assert from_batch.commit_table._commits == from_seq.commit_table._commits
    assert from_batch.commit_table._aborted == from_seq.commit_table._aborted
    # and both recovered instances resume timestamps identically
    assert from_batch.begin() == from_seq.begin()


# ----------------------------------------------------------------------
# executor equivalence: ParallelExecutor ≡ SerialExecutor
# ----------------------------------------------------------------------
#
# The executor choice is performance policy only: fanning the protocol's
# per-partition rounds over a thread pool must decide *exactly* what the
# inline serial rounds decide — same decisions, commit timestamps,
# lastCommit shards, commit table, stats, round counters — including
# when a commit-table protocol error escapes mid-batch, and in what the
# group-commit WAL replays to.  One pool is shared across examples
# (module fixture) so hypothesis isn't churning thread pools; it is a
# passed-in instance, so oracles never shut it down.


@pytest.fixture(scope="module")
def parallel_executor():
    from repro.core.executor import ParallelExecutor

    executor = ParallelExecutor(max_workers=PARTS)
    yield executor
    executor.shutdown()


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([1, 2, PARTS]),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=100, deadline=None)
def test_decide_batch_parallel_executor_equals_serial(
    parallel_executor, batches, num_partitions, level
):
    parallel = PartitionedOracle(
        level=level, num_partitions=num_partitions, executor=parallel_executor
    )
    serial = PartitionedOracle(
        level=level, num_partitions=num_partitions, executor="serial"
    )
    # CommitResult equality covers decisions, commit timestamps, reasons
    # and conflict rows; the state check covers everything else.
    assert run_batched(parallel, batches) == run_batched(serial, batches)
    assert_same_partitioned_state(parallel, serial)

    # Round accounting matches too — executor wall-clock legitimately
    # differs, every counter must not.
    def counters(rounds):
        return (
            rounds.flushes,
            rounds.check_rounds,
            rounds.install_rounds,
            rounds.single_requests,
            rounds.cross_requests,
            rounds.max_partition_rounds,
        )

    assert counters(parallel.round_stats) == counters(serial.round_stats)


@given(
    batches=mixed_partition_batches(),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=60, deadline=None)
def test_parallel_executor_equals_sequential_monolith(
    parallel_executor, batches, level
):
    # Transitivity made explicit for both isolation levels: the
    # parallel-executor partitioned oracle against the *monolithic*
    # sequential reference (commit()/abort() per item).
    parallel = PartitionedOracle(
        level=level, num_partitions=PARTS, executor=parallel_executor
    )
    reference = make_oracle(level)
    decisions = [
        (r.committed, r.start_ts, r.commit_ts, r.reason)
        for r in run_batched(parallel, batches)
    ]
    expected = [
        (r.committed, r.start_ts, r.commit_ts, r.reason)
        for r in run_sequential(reference, batches)
    ]
    assert decisions == expected
    union = {}
    for partition in parallel.partitions:
        union.update(partition._last_commit)
    assert union == reference._last_commit
    assert parallel.commit_table._commits == reference.commit_table._commits
    assert parallel.commit_table._aborted == reference.commit_table._aborted


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([2, PARTS]),
    level=st.sampled_from(["si", "wsi"]),
    bad_positions=st.sets(st.integers(min_value=0, max_value=9), max_size=2),
)
@settings(max_examples=50, deadline=None)
def test_parallel_executor_mid_batch_errors_isolated(
    parallel_executor, batches, num_partitions, level, bad_positions
):
    # The commit-table protocol error escapes from the coordinator's
    # merge pass; the executor phases around it (validation ran before,
    # the install fan-out still lands the staged prefix) must leave the
    # same state the serial engine leaves.
    parallel = PartitionedOracle(
        level=level, num_partitions=num_partitions, executor=parallel_executor
    )
    serial = PartitionedOracle(
        level=level, num_partitions=num_partitions, executor="serial"
    )

    committed_req = CommitRequest(
        parallel.begin(), write_set=frozenset([0, 1, PARTS])
    )
    assert parallel.commit(committed_req).committed
    ref_req = CommitRequest(
        serial.begin(), write_set=frozenset([0, 1, PARTS])
    )
    assert serial.commit(ref_req).committed
    bad_start = committed_req.start_ts

    for batch in batches:
        items, ref_items = [], []
        for i, (reads, writes, client_abort) in enumerate(batch):
            start = parallel.begin()
            ref_start = serial.begin()
            if i in bad_positions:
                items.append(bad_start)
                ref_items.append(bad_start)
            elif client_abort:
                items.append(start)
                ref_items.append(ref_start)
            else:
                items.append(
                    CommitRequest(start, write_set=writes, read_set=reads)
                )
                ref_items.append(
                    CommitRequest(ref_start, write_set=writes, read_set=reads)
                )
        expect_error = any(i < len(batch) for i in bad_positions)
        if expect_error:
            with pytest.raises(ValueError, match="already committed"):
                parallel.decide_batch(items)
            with pytest.raises(ValueError, match="already committed"):
                serial.decide_batch(ref_items)
        else:
            assert parallel.decide_batch(items) == serial.decide_batch(
                ref_items
            )
    assert_same_partitioned_state(parallel, serial)


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([2, PARTS]),
    level=st.sampled_from(["si", "wsi"]),
    max_batch=st.integers(min_value=1, max_value=8),
    bounded=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_parallel_executor_group_commit_wal_replay(
    parallel_executor, batches, num_partitions, level, max_batch, bounded
):
    # Durability leg: a frontend over the parallel-executor oracle must
    # write a group-commit WAL that replays — onto a monolithic or a
    # bounded oracle — to exactly what the serial-executor run's WAL
    # replays to.
    def drive(executor):
        wal = BookKeeperWAL()
        oracle = PartitionedOracle(
            level=level, num_partitions=num_partitions, executor=executor
        )
        frontend = OracleFrontend(oracle, max_batch=max_batch, wal=wal)
        for batch in batches:
            for reads, writes, client_abort in batch:
                start = frontend.begin()
                if client_abort:
                    frontend.submit_abort(start)
                else:
                    frontend.submit_commit(
                        CommitRequest(start, write_set=writes, read_set=reads)
                    )
            frontend.flush()
        frontend.close()
        wal.flush()
        kwargs = {"bounded": True, "max_rows": 4} if bounded else {}
        recovered = make_oracle(level, **kwargs)
        recovered.recover_from(wal)
        return oracle, recovered

    oracle_par, from_par = drive(parallel_executor)
    oracle_ser, from_ser = drive("serial")
    assert_same_partitioned_state(oracle_par, oracle_ser)
    assert dict(from_par._last_commit) == dict(from_ser._last_commit)
    assert from_par.commit_table._commits == from_ser.commit_table._commits
    assert from_par.commit_table._aborted == from_ser.commit_table._aborted
    assert from_par.begin() == from_ser.begin()


# ----------------------------------------------------------------------
# begin leases: leased-begin histories ≡ per-call-begin histories
# ----------------------------------------------------------------------
#
# ``begin_lease=n`` changes *where* a start timestamp comes from (a
# locally-served, durably-reserved block) but never what is decided for
# the same begin/submit schedule.  With the begins of a history issued
# up-front (the prologue shape), leases refill back-to-back, so the
# served begins are exactly the per-call sequence; the only permitted
# difference is a constant timestamp *gap* in commit timestamps when the
# last lease is partially unserved (``begin_many`` leases exactly, so
# even the gap vanishes).  Decisions are gap-invariant: every commit
# timestamp exceeds every prologue begin on both sides.

BACKEND_KINDS = ["si", "wsi", "bounded-si", "bounded-wsi", "partitioned"]


def make_backend(kind):
    if kind == "partitioned":
        return PartitionedOracle(level="wsi", num_partitions=PARTS)
    if kind.startswith("bounded-"):
        return make_oracle(kind.split("-", 1)[1], bounded=True, max_rows=5)
    return make_oracle(kind)


@st.composite
def lease_step_scripts(draw):
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=20))):
        reads = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        writes = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        client_abort = draw(st.booleans()) and draw(st.booleans())  # ~25 %
        steps.append((frozenset(reads), frozenset(writes), client_abort))
    return steps


def run_lease_history(backend, steps, begin_lease, max_batch, use_begin_many):
    frontend = OracleFrontend(
        backend, max_batch=max_batch, begin_lease=begin_lease
    )
    if use_begin_many:
        starts = frontend.begin_many(len(steps))
    else:
        starts = [frontend.begin() for _ in steps]
    futures = []
    for start, (reads, writes, client_abort) in zip(starts, steps):
        if client_abort:
            futures.append(frontend.submit_abort(start))
        else:
            futures.append(
                frontend.submit_commit(
                    CommitRequest(start, write_set=writes, read_set=reads)
                )
            )
    frontend.flush()
    return starts, futures


def normalized_history(futures):
    """Decisions with commit timestamps rebased on the first one, plus
    the base — so histories compare across a constant lease gap."""
    bases = [
        f._commit_ts
        for f in futures
        if f._error is None and f._committed and f._commit_ts is not None
    ]
    base = bases[0] if bases else 0
    decisions = []
    for f in futures:
        result = f.result()
        decisions.append(
            (
                result.committed,
                result.start_ts,
                None if result.commit_ts is None else result.commit_ts - base,
                result.reason,
                result.conflict_row,
            )
        )
    return decisions, base


@given(
    steps=lease_step_scripts(),
    begin_lease=st.integers(min_value=2, max_value=12),
    max_batch=st.integers(min_value=1, max_value=10),
    kind=st.sampled_from(BACKEND_KINDS),
    use_begin_many=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_leased_begin_history_equivalence(
    steps, begin_lease, max_batch, kind, use_begin_many
):
    leased = make_backend(kind)
    reference = make_backend(kind)
    l_starts, l_futures = run_lease_history(
        leased, steps, begin_lease, max_batch, use_begin_many
    )
    r_starts, r_futures = run_lease_history(
        reference, steps, 1, max_batch, use_begin_many
    )
    # identical, strictly increasing start timestamps — leases refill
    # back-to-back in the prologue, so leased == per-call begins
    assert l_starts == r_starts
    assert all(b > a for a, b in zip(l_starts, l_starts[1:]))
    l_history, l_base = normalized_history(l_futures)
    r_history, r_base = normalized_history(r_futures)
    assert l_history == r_history
    gap = l_base - r_base
    assert gap >= 0
    if use_begin_many:
        assert gap == 0  # begin_many leases exactly: no unserved block
    # final state equal up to the same constant gap
    if kind == "partitioned":
        for partition, ref_partition in zip(
            leased.partitions, reference.partitions
        ):
            assert {k: v - gap for k, v in partition._last_commit.items()} == dict(
                ref_partition._last_commit
            )
        assert leased.cross_partition_commits == reference.cross_partition_commits
        assert leased.single_partition_commits == reference.single_partition_commits
    else:
        assert {k: v - gap for k, v in leased._last_commit.items()} == dict(
            reference._last_commit
        )
        if kind.startswith("bounded-"):
            assert list(leased._last_commit) == list(reference._last_commit)
            ref_tmax = reference.tmax
            assert leased.tmax == (ref_tmax + gap if ref_tmax else 0)
    assert {
        s: c - gap for s, c in leased.commit_table._commits.items()
    } == dict(reference.commit_table._commits)
    assert leased.commit_table._aborted == reference.commit_table._aborted
    assert leased.stats == reference.stats


@given(
    script=workload_scripts(),
    max_batch=st.integers(min_value=1, max_value=8),
    begin_lease=st.integers(min_value=1, max_value=12),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=60, deadline=None)
def test_leased_begin_interleaved_invariants_and_recovery(
    script, max_batch, begin_lease, level
):
    # Fully interleaved begins/submits/flushes: decisions may legitimately
    # shift (a lease-served begin carries the snapshot of its refill
    # time), but the timestamp invariants may not — begins strictly
    # increase, never collide with commit timestamps, and nothing is
    # ever reissued across recover_from, unserved lease included.
    wal = BookKeeperWAL()
    oracle = make_oracle(level, wal=wal)
    frontend = OracleFrontend(
        oracle, max_batch=max_batch, begin_lease=begin_lease
    )
    starts = []
    pending = []
    for step_idx, (reads, writes, gap, client_abort) in enumerate(script):
        start_ts = frontend.begin()
        starts.append(start_ts)
        request = CommitRequest(start_ts, write_set=writes, read_set=reads)
        pending.append([step_idx + gap, request, client_abort])
        for entry in list(pending):
            if entry[0] <= step_idx:
                pending.remove(entry)
                if entry[2]:
                    frontend.submit_abort(entry[1].start_ts)
                else:
                    frontend.submit_commit(entry[1])
    for entry in pending:
        if entry[2]:
            frontend.submit_abort(entry[1].start_ts)
        else:
            frontend.submit_commit(entry[1])
    frontend.flush()

    assert all(b > a for a, b in zip(starts, starts[1:]))
    commit_timestamps = set(oracle.commit_table._commits.values())
    assert commit_timestamps.isdisjoint(starts)
    for start_ts, commit_ts in oracle.commit_table._commits.items():
        assert commit_ts > start_ts

    # crash now: recovery must resume strictly above the reservation
    # mark, so served begins, commit timestamps and the unserved lease
    # remainder alike can never come back
    wal.flush()
    fresh = make_oracle(level)
    fresh.recover_from(wal)
    used = set(starts) | commit_timestamps
    floor = oracle.timestamp_oracle.reserved_high_water
    for _ in range(3):
        ts = fresh.begin()
        assert ts > floor
        assert ts not in used


@given(
    script=workload_scripts(),
    max_batch=st.integers(min_value=1, max_value=12),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=60, deadline=None)
def test_group_commit_recovery_equivalence(script, max_batch, level):
    # Durability leg of the same property: replaying the group-commit WAL
    # reconstructs exactly the state the live frontend-backed oracle had.
    wal = BookKeeperWAL()
    oracle = make_oracle(level, wal=wal)
    drive_frontend(oracle, script, max_batch, set())
    wal.flush()
    fresh = make_oracle(level)
    fresh.recover_from(wal)
    assert dict(fresh._last_commit) == dict(oracle._last_commit)
    assert fresh.commit_table._commits == oracle.commit_table._commits
    assert fresh.commit_table._aborted == oracle.commit_table._aborted
    # and the recovered oracle never reissues a timestamp
    used = set(oracle.commit_table._commits) | set(
        oracle.commit_table._commits.values()
    )
    for _ in range(5):
        assert fresh.begin() not in used


# ---------------------------------------------------------------------------
# failover history equivalence (the HA serving tier)
# ---------------------------------------------------------------------------
#
# A leader crash mid-batch must not change *what the history decides*:
# retried requests re-decide identically against the recovered state.
# The property holds unconditionally when every begin precedes every
# decision — with interleaved begins a retried commit's timestamp lands
# after later begins, which can legitimately flip an rw-conflict (the
# transaction really is concurrent with more history on the retry), so
# the scripts here open all transactions up front.  Non-durable flush
# points are allowed anywhere: a flushed-but-unsynced decision is lost
# in the crash and retried exactly like an open-batch one.

from repro.server import ReplicatedFrontend, RetryPolicy


@st.composite
def failover_scripts(draw):
    steps = []
    num = draw(st.integers(min_value=1, max_value=10))
    for _ in range(num):
        reads = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        writes = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        client_abort = draw(st.booleans()) and draw(st.booleans())  # ~25 %
        steps.append((frozenset(reads), frozenset(writes), client_abort))
    flush_points = draw(
        st.sets(st.integers(min_value=0, max_value=num - 1), max_size=3)
    )
    kill_after = draw(st.integers(min_value=0, max_value=num - 1))
    return steps, flush_points, kill_after


def _drive_script(frontend, steps, flush_points, mid_flush, crash_at=None):
    """All begins first, then submissions in order; returns the futures.

    ``mid_flush`` forces the open *batch* (not the WAL) at the given
    submission indices; ``crash_at`` invokes the caller's crash hook
    after that submission index.
    """
    starts = [frontend.begin() for _ in steps]
    futures = []
    for idx, (reads, writes, client_abort) in enumerate(steps):
        if client_abort:
            futures.append(frontend.submit_abort(starts[idx]))
        else:
            futures.append(
                frontend.submit_commit(
                    CommitRequest(starts[idx], write_set=writes, read_set=reads)
                )
            )
        if idx in flush_points:
            mid_flush()
        if crash_at is not None and idx == crash_at:
            crash_at = None
            yield_crash = True
        else:
            yield_crash = False
        if yield_crash:
            yield idx
    yield -1  # done marker
    # futures escape via the attribute below (generators can't return
    # values portably before the final yield)
    _drive_script.futures = futures
    _drive_script.starts = starts


def _outcomes(futures):
    return [f.outcome() for f in futures]


@given(script=failover_scripts(), level=st.sampled_from(["si", "wsi"]))
@settings(max_examples=60, deadline=None)
def test_failover_history_equivalence(script, level):
    steps, flush_points, kill_after = script

    # Reference: a plain frontend, no crash, same flush points.
    reference = OracleFrontend(make_oracle(level), max_batch=100)
    ref_drive = _drive_script(reference, steps, flush_points, reference.flush)
    for _ in ref_drive:
        pass
    reference.flush()
    ref_futures = _drive_script.futures

    # HA tier: crash the leader after submission `kill_after`; every
    # not-yet-durable request is retried against the promoted standby.
    rf = ReplicatedFrontend(
        num_hosts=2,
        level=level,
        warm=True,
        max_batch=100,
        retry_policy=RetryPolicy(max_attempts=8, base_delay=0.0),
        # pinned: the reference frontend above is the status oracle, so
        # this side must not drift with the REPRO_ENGINE axis.
        engine="oracle",
    )
    ha_drive = _drive_script(
        rf,
        steps,
        flush_points,
        lambda: rf.active_frontend.flush(),  # batch out, WAL NOT synced
        crash_at=kill_after,
    )
    for marker in ha_drive:
        if marker >= 0:
            rf.standby_catch_up()
            rf.kill_active()
    rf.flush()
    ha_futures = _drive_script.futures
    ha_starts = _drive_script.starts

    # Same per-request outcome, crash or no crash.
    assert _outcomes(ha_futures) == _outcomes(ref_futures)

    # And no timestamp is ever reused across the failover: begins and
    # commit timestamps are all distinct.
    commit_ts = [
        f.commit_ts
        for f in ha_futures
        if f.outcome() == "committed" and f.commit_ts is not None
    ]
    seen = ha_starts + commit_ts
    assert len(seen) == len(set(seen))
    assert rf.failovers == 1


# ----------------------------------------------------------------------
# array backend ≡ dict backend (the representation-change pin)
# ----------------------------------------------------------------------
#
# The array lastCommit store (repro.core.lastcommit) must be a pure
# representation change: for any workload, an array-backed oracle and a
# dict-backed oracle decide identically — decisions, commit timestamps,
# reasons, conflict rows, stats (rows_checked included), final
# lastCommit content and LRU order — and their WALs replay to the same
# state on either backend.


@given(
    batches=decision_batches(),
    level=st.sampled_from(["si", "wsi"]),
    bounded=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_decide_batch_array_equals_dict_backend(batches, level, bounded):
    kwargs = {"bounded": True, "max_rows": 4} if bounded else {}
    array_oracle = make_oracle(level, lastcommit="array", **kwargs)
    dict_oracle = make_oracle(level, lastcommit="dict", **kwargs)
    assert run_batched(array_oracle, batches) == run_batched(
        dict_oracle, batches
    )
    assert_same_final_state(array_oracle, dict_oracle, check_lru=bounded)


@st.composite
def wide_int_batches(draw):
    """Batches whose read sets are wide enough (>= NUMPY_MIN_ROWS) and
    purely int-keyed to drive the interner's vectorised int lane inside
    the batch decide loop, with enough key reuse to produce conflicts."""
    from repro.core.lastcommit import NUMPY_MIN_ROWS

    keyspace = st.integers(min_value=0, max_value=200)
    batches = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        batch = []
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            reads = draw(
                st.sets(
                    keyspace,
                    min_size=NUMPY_MIN_ROWS,
                    max_size=NUMPY_MIN_ROWS + 16,
                )
            )
            writes = draw(st.sets(keyspace, min_size=1, max_size=4))
            batch.append((frozenset(reads), frozenset(writes), False))
        batches.append(batch)
    return batches


@given(batches=wide_int_batches(), level=st.sampled_from(["si", "wsi"]))
@settings(max_examples=60, deadline=None)
def test_decide_batch_array_equals_dict_vectorised_lane(batches, level):
    array_oracle = make_oracle(level, lastcommit="array")
    dict_oracle = make_oracle(level, lastcommit="dict")
    assert run_batched(array_oracle, batches) == run_batched(
        dict_oracle, batches
    )
    assert_same_final_state(array_oracle, dict_oracle)
    # the lane stayed valid: every key in this workload is a plain int
    assert array_oracle._last_commit.interner.int_lane_ok


@given(
    script=workload_scripts(),
    max_batch=st.integers(min_value=1, max_value=12),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=80, deadline=None)
def test_frontend_array_backend_equals_dict_reference(
    script, max_batch, level
):
    # The full frontend path (batching, client aborts, read-only fast
    # path) over an array-backed oracle, replayed on a dict-backed
    # reference in frontend decision order.
    oracle = make_oracle(level, lastcommit="array", wal=BookKeeperWAL())
    trace = drive_frontend(oracle, script, max_batch, set())
    reference = make_oracle(level, lastcommit="dict")
    replay_on_reference(reference, trace)
    assert_same_final_state(oracle, reference)


@given(
    batches=decision_batches(),
    level=st.sampled_from(["si", "wsi"]),
    recover_backend=st.sampled_from(["dict", "array"]),
)
@settings(max_examples=60, deadline=None)
def test_array_backend_wal_replay_equivalence(
    batches, level, recover_backend
):
    # An array-backed run's group-commit WAL must replay — onto *either*
    # backend — to the state a dict-backed run's WAL replays to.
    array_wal, dict_wal = BookKeeperWAL(), BookKeeperWAL()
    array_oracle = make_oracle(level, lastcommit="array", wal=array_wal)
    dict_oracle = make_oracle(level, lastcommit="dict", wal=dict_wal)
    assert run_batched(array_oracle, batches) == run_batched(
        dict_oracle, batches
    )
    array_wal.flush()
    dict_wal.flush()
    from_array = make_oracle(level, lastcommit=recover_backend)
    from_array.recover_from(array_wal)
    from_dict = make_oracle(level, lastcommit="dict")
    from_dict.recover_from(dict_wal)
    assert dict(from_array._last_commit) == dict(from_dict._last_commit)
    assert (
        from_array.commit_table._commits == from_dict.commit_table._commits
    )
    assert (
        from_array.commit_table._aborted == from_dict.commit_table._aborted
    )
    assert from_array.begin() == from_dict.begin()


@given(
    batches=mixed_partition_batches(),
    num_partitions=st.sampled_from([1, 2, PARTS]),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=60, deadline=None)
def test_partitioned_array_equals_dict_backend(
    batches, num_partitions, level
):
    array_oracle = PartitionedOracle(
        level=level, num_partitions=num_partitions, lastcommit="array"
    )
    dict_oracle = PartitionedOracle(
        level=level, num_partitions=num_partitions, lastcommit="dict"
    )
    assert run_batched(array_oracle, batches) == run_batched(
        dict_oracle, batches
    )
    for array_part, dict_part in zip(
        array_oracle.partitions, dict_oracle.partitions
    ):
        assert array_part._last_commit == dict_part._last_commit
    assert (
        array_oracle.commit_table._commits
        == dict_oracle.commit_table._commits
    )
    assert (
        array_oracle.commit_table._aborted
        == dict_oracle.commit_table._aborted
    )
    assert array_oracle.stats == dict_oracle.stats
