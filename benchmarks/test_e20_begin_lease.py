"""E20 — begin-timestamp leases: leased begin() vs per-call begin().

Not a paper figure: this closes the last per-transaction oracle
round-trip.  Every layer decides commits in bulk (E17/E18/E19), but the
seed ``begin()`` still entered the critical section once per transaction
for one ``tso.next()`` — the exact per-timestamp cost Appendix A
amortizes on the durability axis ("the timestamp oracle could reserve
thousands of timestamps per each write into the write-ahead log") and
Omid-lineage deployments amortize on the request axis by serving begins
from leased ranges.  ``OracleFrontend(begin_lease=n)`` leases a
contiguous, durably-reserved block of ``n`` start timestamps per refill
and serves begins locally; the block rides the existing
reservation/WAL protocol, so a crash mid-lease leaves gaps, never reuse
(the recovery pins live in ``tests/core/test_timestamps.py`` and
``tests/server/test_frontend_recovery.py``).

Acceptance: the leased frontend sustains >= 1.5x the per-call begin()
frontend at lease 32 on a begin-heavy workload (median of paired runs —
E17/E18's protocol).  A sweep shows throughput vs lease size with the
refill counts, and the decision-equality leg pins that lease size never
changes what is decided (begins precede commits in the harness, so
decisions are timestamp-gap-invariant).

Set ``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` target) for a
tiny-sized sanity run with correspondingly relaxed bars.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.bench.frontend_bench import (
    bench_batched,
    bench_begins,
    make_specs,
    median_speedup,
    paired_begin_speedups,
    sweep_begin_lease,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_BEGINS = 40_000 if SMOKE else 200_000
NUM_REQUESTS = 5_000 if SMOKE else 30_000
PAIRS = 2 if SMOKE else 5
REPEATS = 1 if SMOKE else 2
#: the smoke bar is ratcheted to ~25% below the measured smoke ratio
#: (BENCH_smoke.json), so hot-path regressions fail fast at tiny sizes.
SPEEDUP_BAR = 1.9 if SMOKE else 1.5
LEASE_SIZES = (1, 8, 32, 128, 1024)
BATCH_LEASES = (1, 32, 128)


@pytest.mark.figure("e20")
def test_e20_begin_lease_speedup(benchmark, print_header):
    ratios = benchmark.pedantic(
        lambda: paired_begin_speedups(
            level="wsi", begin_lease=32, pairs=PAIRS, num_begins=NUM_BEGINS
        ),
        rounds=1,
        iterations=1,
    )
    print_header("E20 — leased begin vs per-call begin (wall clock)")

    rows = [
        bench_begins(
            "wsi", NUM_BEGINS, begin_lease=lease, repeats=REPEATS
        ).as_row()
        for lease in LEASE_SIZES
    ]
    print(
        format_table(
            ["level", "lease", "begins/s", "us/begin", "refills",
             "ts-reserve recs", "commits", "unserved"],
            rows,
            title=f"begin-only workload, {NUM_BEGINS} begins",
        )
    )
    print()
    print("paired WSI speedups at lease 32 (leased vs per-call begin):")
    print("  " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(
        f"  median: {median_speedup(ratios):.2f}x "
        f"(acceptance bar: {SPEEDUP_BAR}x)"
    )

    # Acceptance: leased begin >= 1.5x the per-call begin() frontend at
    # lease 32 on a begin-heavy workload, median of paired runs.
    assert median_speedup(ratios) >= SPEEDUP_BAR
    record("e20", median_speedup=median_speedup(ratios), bar=SPEEDUP_BAR)


@pytest.mark.figure("e20")
def test_e20_begin_heavy_mixed_workload(print_header):
    """The same lever with commit traffic interleaved (one write commit
    per 8 begins — a begin-dominated session mix): the lease still pays;
    the bar is parity-tolerant because the commit path dilutes it."""
    print_header("E20b — begin-heavy mix (1 commit per 8 begins)")
    results = sweep_begin_lease(
        "wsi",
        leases=(1, 32),
        num_begins=NUM_BEGINS // 2,
        repeats=REPEATS,
        commit_every=8,
    )
    print(
        format_table(
            ["level", "lease", "begins/s", "us/begin", "refills",
             "ts-reserve recs", "commits", "unserved"],
            [r.as_row() for r in results],
        )
    )
    per_call, leased = results
    ratio = leased.begins_per_sec / per_call.begins_per_sec
    print(f"  mixed-workload leased speedup: {ratio:.2f}x")
    # No decision-equality assert here: with begins interleaving flushes,
    # a lease-served begin carries a slightly older snapshot (its ts was
    # allocated at refill time), which under contention can add aborts —
    # the lease-sizing trade-off the server docs spell out.  E20c pins
    # equality where it genuinely holds (begins precede commits).
    assert leased.commits + leased.aborts == per_call.commits + per_call.aborts
    assert ratio >= 0.9  # parity bar (noise-tolerant); typical win ~1.3x


@pytest.mark.figure("e20")
def test_e20_decisions_identical_across_lease_sizes(print_header):
    """Zero-tolerance leg: lease size must never change what is decided.
    The harness begins every transaction before the timed commit region,
    so the only lease effect is timestamp *gaps* — and decisions are
    gap-invariant (the hypothesis suite pins full-state equivalence;
    this pins it at benchmark scale, monolithic and partitioned)."""
    print_header("E20c — decision equality across begin-lease sizes")
    specs = make_specs(NUM_REQUESTS)
    for level in ("si", "wsi"):
        baseline = bench_batched(
            level, specs, batch_size=32, repeats=1, begin_lease=1
        )
        for lease in BATCH_LEASES[1:]:
            leased = bench_batched(
                level, specs, batch_size=32, repeats=1, begin_lease=lease
            )
            assert leased.commits == baseline.commits
            assert leased.aborts == baseline.aborts
        print(
            f"  {level}: {baseline.commits} commits / "
            f"{baseline.aborts} aborts at every lease size"
        )
    partitioned = [
        bench_batched(
            "wsi", specs, batch_size=32, repeats=1, partitions=4,
            begin_lease=lease,
        )
        for lease in BATCH_LEASES
    ]
    assert len({(r.commits, r.aborts) for r in partitioned}) == 1
    print(
        f"  partitioned(4): {partitioned[0].commits} commits / "
        f"{partitioned[0].aborts} aborts at every lease size"
    )


@pytest.mark.figure("e20")
def test_e20_crash_mid_lease_never_reissues(print_header):
    """Recovery leg at benchmark scale: crash a leased frontend mid-lease
    and recover from its WAL — no start or commit timestamp is ever
    reissued, because the lease was durably reserved before serving."""
    from repro.core.status_oracle import make_oracle
    from repro.server import OracleFrontend
    from repro.wal.bookkeeper import BookKeeperWAL

    print_header("E20d — crash mid-lease: no timestamp reuse")
    wal = BookKeeperWAL()
    oracle = make_oracle("wsi", wal=wal)
    frontend = OracleFrontend(oracle, max_batch=32, begin_lease=32)
    specs = make_specs(2_000 if SMOKE else 10_000)
    issued = set()
    for i, spec in enumerate(specs):
        start_ts = frontend.begin()
        issued.add(start_ts)
        if i % 3 == 0:
            frontend.submit_commit_nowait(spec.commit_request(start_ts))
    frontend.flush()
    issued.update(oracle.commit_table._commits.values())
    assert frontend.begin_lease_remaining > 0  # crash lands mid-lease
    wal.flush()  # the durable prefix; the frontend host now "dies"

    fresh = make_oracle("wsi")
    fresh.recover_from(wal)
    reissued = [ts for ts in (fresh.begin() for _ in range(1_000)) if ts in issued]
    assert reissued == []
    print(
        f"  {len(issued)} timestamps issued pre-crash; 1000 post-recovery "
        "begins, zero collisions"
    )
