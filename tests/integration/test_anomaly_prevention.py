"""Live anomaly tests: the paper's scenarios against the real stack.

These run the paper's motivating examples end-to-end — real transaction
clients, real store, real oracle — rather than as abstract histories.
"""

import pytest

from repro.core import create_system
from repro.core.errors import ConflictAbort


class TestWriteSkewLive:
    """§3.1's constraint scenario: x + y > 0, initially x = y = 1."""

    def _setup(self, system):
        init = system.manager.begin()
        init.write("x", 1)
        init.write("y", 1)
        init.commit()

    def _decrement_if_valid(self, txn, target):
        x, y = txn.read("x"), txn.read("y")
        assert x + y > 0  # each txn validates the constraint
        txn.write(target, (x if target == "x" else y) - 1)

    def test_si_violates_the_constraint(self, si_system):
        self._setup(si_system)
        t1 = si_system.manager.begin()
        t2 = si_system.manager.begin()
        self._decrement_if_valid(t1, "x")
        self._decrement_if_valid(t2, "y")
        t1.commit()
        t2.commit()  # SI allows both: write skew
        check = si_system.manager.begin()
        assert check.read("x") + check.read("y") == 0  # constraint violated!

    def test_wsi_preserves_the_constraint(self, wsi_system):
        self._setup(wsi_system)
        t1 = wsi_system.manager.begin()
        t2 = wsi_system.manager.begin()
        self._decrement_if_valid(t1, "x")
        self._decrement_if_valid(t2, "y")
        t1.commit()
        with pytest.raises(ConflictAbort):
            t2.commit()
        check = wsi_system.manager.begin()
        assert check.read("x") + check.read("y") > 0  # constraint holds


class TestLostUpdateLive:
    """§3.2 H3: both levels must prevent the lost update."""

    @pytest.mark.parametrize("level", ["si", "wsi"])
    def test_concurrent_increment_conflict(self, level):
        system = create_system(level)
        init = system.manager.begin()
        init.write("counter", 10)
        init.commit()
        t1 = system.manager.begin()
        t2 = system.manager.begin()
        v1 = t1.read("counter")
        v2 = t2.read("counter")
        t1.write("counter", v1 + 1)
        t2.write("counter", v2 + 1)
        t1.commit()
        with pytest.raises(ConflictAbort):
            t2.commit()
        assert system.manager.begin().read("counter") == 11  # no update lost


class TestBlindWriteLive:
    """§3.2 H4: SI aborts the blind write, WSI allows it."""

    def test_si_unnecessary_abort(self, si_system):
        t1 = si_system.manager.begin()
        t2 = si_system.manager.begin()
        t1.read("x")
        t2.write("x", "blind")  # t2 never read x
        t1.write("x", "t1")
        t1.commit()
        with pytest.raises(ConflictAbort):
            t2.commit()

    def test_wsi_allows_blind_write(self, wsi_system):
        t1 = wsi_system.manager.begin()
        t2 = wsi_system.manager.begin()
        t1.read("x")
        t2.write("x", "blind")
        t1.write("x", "t1")
        t1.commit()
        t2.commit()  # commits: blind writes don't conflict under WSI
        # final value is t2's (it committed last)
        assert wsi_system.manager.begin().read("x") == "blind"


class TestAnsiAnomaliesLive:
    """§3.2: snapshot reads prevent the ANSI anomalies under BOTH levels
    (independent of conflict detection)."""

    def test_no_dirty_read(self, any_system):
        writer = any_system.manager.begin()
        writer.write("x", "uncommitted")
        reader = any_system.manager.begin()
        assert reader.read("x") is None

    def test_no_read_of_aborted_data(self, any_system):
        writer = any_system.manager.begin()
        writer.write("x", "doomed")
        writer.abort()
        reader = any_system.manager.begin()
        assert reader.read("x") is None

    def test_no_fuzzy_read(self, any_system):
        init = any_system.manager.begin()
        init.write("x", "v1")
        init.commit()
        reader = any_system.manager.begin()
        assert reader.read("x") == "v1"
        concurrent = any_system.manager.begin()
        concurrent.write("x", "v2")
        concurrent.commit()
        assert reader.read("x") == "v1"  # still the same snapshot

    def test_no_phantom_on_fixed_snapshot(self, any_system):
        init = any_system.manager.begin()
        init.write("k1", 1)
        init.write("k2", 2)
        init.commit()
        reader = any_system.manager.begin()
        first_scan = [reader.read(k) for k in ("k1", "k2", "k3")]
        inserter = any_system.manager.begin()
        inserter.write("k3", 3)
        inserter.commit()
        second_scan = [reader.read(k) for k in ("k1", "k2", "k3")]
        assert first_scan == second_scan == [1, 2, None]


class TestReadOnlyNeverAborts:
    """§4.1/§5.1: read-only transactions always commit, at both levels."""

    @pytest.mark.parametrize("level", ["si", "wsi"])
    def test_under_heavy_conflicting_writes(self, level):
        system = create_system(level)
        readers = [system.manager.begin() for _ in range(10)]
        for r in readers:
            r.read("hot")
        # a storm of writes to everything the readers looked at
        for i in range(20):
            w = system.manager.begin()
            w.write("hot", i)
            w.commit()
        for r in readers:
            r.read("hot")  # read again after the storm
            r.commit()  # never raises
        assert all(r.commit_ts == r.start_ts for r in readers)
