"""Every lint pass catches its fixture's violations at exact locations.

Fixtures under ``fixtures/`` mark each planted violation with an
``# EXPECT: <pass>`` comment; the tests derive the expected line
numbers from those markers so the assertion is location-exact without
hard-coded line numbers going stale.
"""

import os
import re
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.analysis.lint import ALL_PASSES, lint_file, lint_source, lint_tree

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

CASES = {
    "no-builtin-hash": "hash_routing.py",
    "deterministic-protocol": "nondeterministic.py",
    "guarded-by": "unguarded.py",
    "future-discipline": "future_settle.py",
    "no-bare-assert": "bare_assert.py",
}

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([\w-]+)")


def expected_lines(path, pass_name):
    lines = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            m = _EXPECT_RE.search(line)
            if m and m.group(1) == pass_name:
                lines.append(lineno)
    return lines


def test_the_five_passes_exist():
    assert sorted(CASES) == sorted(p.name for p in ALL_PASSES)


@pytest.mark.parametrize("pass_name", sorted(CASES))
def test_pass_catches_fixture_violations_at_exact_lines(pass_name):
    path = os.path.join(FIXTURES, CASES[pass_name])
    findings = lint_file(path, passes=[pass_name])
    want = expected_lines(path, pass_name)
    assert want, "fixture must mark at least one EXPECT line"
    assert [f.line for f in findings] == want
    assert all(f.pass_name == pass_name for f in findings)


@pytest.mark.parametrize("pass_name", sorted(CASES))
def test_fixture_trips_only_its_own_pass(pass_name):
    # All passes over one fixture find nothing beyond its own markers:
    # the suppressed/exempt/allowed lines in each fixture prove skips,
    # __hash__ exemption, and the allowed time APIs all hold.
    path = os.path.join(FIXTURES, CASES[pass_name])
    findings = lint_file(path)
    want = {(line, pass_name) for line in expected_lines(path, pass_name)}
    assert {(f.line, f.pass_name) for f in findings} == want


def test_src_tree_is_clean():
    # The acceptance bar: the shipped tree passes its own linter.
    assert lint_tree() == []


def test_deterministic_protocol_is_scoped_to_decision_paths(tmp_path):
    source = "import time\n\n\ndef f():\n    return time.time()\n"
    for sub in ("core", "server"):
        pkg = tmp_path / sub
        pkg.mkdir()
        (pkg / "mod.py").write_text(source)
    findings = lint_tree(str(tmp_path))
    assert [os.path.relpath(f.path, tmp_path) for f in findings] == [
        os.path.join("core", "mod.py")
    ]
    assert findings[0].pass_name == "deterministic-protocol"


def test_explicit_guard_declaration_form():
    source = textwrap.dedent(
        """\
        import threading

        _LOCKS = [threading.Lock()]
        # guarded-by: _table -> _LOCKS


        class Shard:
            def __init__(self):
                self._table = {}  # lint: skip=guarded-by -- init, unshared

            def good(self, key, value):
                lock = _LOCKS[0]
                with lock:
                    self._table[key] = value

            def bad(self, key, value):
                self._table[key] = value
        """
    )
    findings = lint_source(source, passes=["guarded-by"])
    bad_line = source.splitlines().index("        self._table[key] = value") + 1
    assert [(f.line, f.pass_name) for f in findings] == [(bad_line, "guarded-by")]


def test_skip_comment_above_multiline_statement():
    source = (
        "def settle(future, outcome):\n"
        "    # lint: skip=future-discipline -- reviewed settle site\n"
        "    future._result = make_result(\n"
        "        outcome,\n"
        "    )\n"
    )
    assert lint_source(source, passes=["future-discipline"]) == []


def test_cli_exit_codes_and_output():
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    dirty = os.path.join(FIXTURES, "bare_assert.py")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", dirty],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 1
    assert "[no-bare-assert]" in proc.stdout

    clean = os.path.join(os.path.dirname(os.path.abspath(repro.__file__)), "core", "errors.py")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", clean],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0
    assert "clean" in proc.stdout
