"""Isolation-level registry and one-call system assembly.

The paper contrasts two isolation levels; this module gives them stable
names and a convenience constructor that wires a complete single-process
transactional system (store + oracle + manager) for examples and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.status_oracle import StatusOracle, make_oracle
from repro.core.timestamps import TimestampOracle
from repro.core.transaction import TransactionManager
from repro.mvcc.store import MVCCStore
from repro.wal.bookkeeper import BookKeeperWAL


class IsolationLevel(enum.Enum):
    """The two isolation levels the paper compares.

    * ``SNAPSHOT`` — snapshot isolation ("read-snapshot isolation" in the
      paper's terminology, §4): write-write conflict detection; not
      serializable (allows write skew, H2).
    * ``WRITE_SNAPSHOT`` — write-snapshot isolation: read-write conflict
      detection; serializable (Theorem 1).
    """

    SNAPSHOT = "si"
    WRITE_SNAPSHOT = "wsi"

    @property
    def is_serializable(self) -> bool:
        """§4.2: WSI is serializable; SI is not (§3.1)."""
        return self is IsolationLevel.WRITE_SNAPSHOT

    @classmethod
    def parse(cls, name: str) -> "IsolationLevel":
        """Accept 'si'/'wsi' and common aliases."""
        normalized = name.strip().lower().replace("-", "_")
        aliases = {
            "si": cls.SNAPSHOT,
            "snapshot": cls.SNAPSHOT,
            "snapshot_isolation": cls.SNAPSHOT,
            "read_snapshot": cls.SNAPSHOT,
            "wsi": cls.WRITE_SNAPSHOT,
            "write_snapshot": cls.WRITE_SNAPSHOT,
            "write_snapshot_isolation": cls.WRITE_SNAPSHOT,
            "serializable": cls.WRITE_SNAPSHOT,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(f"unknown isolation level {name!r}") from None


@dataclass
class TransactionalSystem:
    """A fully wired single-process stack: store, oracle, manager."""

    level: IsolationLevel
    store: MVCCStore
    oracle: StatusOracle
    manager: TransactionManager
    wal: Optional[BookKeeperWAL] = None


def create_system(
    level: IsolationLevel | str = IsolationLevel.WRITE_SNAPSHOT,
    bounded: bool = False,
    max_rows: int = 1_000_000,
    durable: bool = False,
) -> TransactionalSystem:
    """Assemble a transactional system in one call.

    Args:
        level: isolation level (enum or 'si'/'wsi' string).
        bounded: use the Appendix-A bounded-memory oracle (Algorithm 3).
        max_rows: lastCommit capacity when ``bounded``.
        durable: attach a BookKeeper-style WAL to the oracle.

    Example::

        system = create_system("wsi")
        with system.manager.begin() as txn:
            txn.write("row1", "hello")
    """
    if isinstance(level, str):
        level = IsolationLevel.parse(level)
    wal = BookKeeperWAL() if durable else None
    oracle = make_oracle(
        level.value,
        bounded=bounded,
        max_rows=max_rows,
        timestamp_oracle=TimestampOracle(),
        wal=wal,
    )
    store = MVCCStore()
    manager = TransactionManager(oracle, store)
    return TransactionalSystem(
        level=level, store=store, oracle=oracle, manager=manager, wal=wal
    )
