"""Coordination substrate: ZooKeeper-style service + oracle failover.

Public surface:

* :class:`ZooKeeper` / :class:`Session` — znodes, ephemerals,
  sequentials, one-shot watches.
* :class:`LeaderElection` — the standard recipe (predecessor watching).
* :class:`OracleReplicaSet` / :class:`OracleHost` — replicated status
  oracle with election-driven WAL-recovery failover (Appendix A).
"""

from repro.coord.failover import OracleHost, OracleReplicaSet
from repro.coord.zookeeper import (
    BadVersionError,
    EventType,
    LeaderElection,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    Session,
    SessionExpiredError,
    WatchEvent,
    ZKError,
    ZooKeeper,
)

__all__ = [
    "ZooKeeper",
    "Session",
    "LeaderElection",
    "WatchEvent",
    "EventType",
    "ZKError",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
    "BadVersionError",
    "SessionExpiredError",
    "OracleReplicaSet",
    "OracleHost",
]
