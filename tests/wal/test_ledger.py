"""Unit tests for the replicated ledger substrate."""

import pytest

from repro.core.errors import LedgerClosedError, NotEnoughBookiesError
from repro.wal.ledger import LedgerManager


class TestAppendRead:
    def test_append_returns_sequential_ids(self):
        ledger = LedgerManager().create_ledger()
        assert ledger.append("a") == 0
        assert ledger.append("b") == 1
        assert ledger.entry_count == 2

    def test_read_back(self):
        ledger = LedgerManager().create_ledger()
        ledger.append({"commit": 1})
        assert ledger.read(0).payload == {"commit": 1}

    def test_replay_in_order(self):
        ledger = LedgerManager().create_ledger()
        for i in range(10):
            ledger.append(i)
        assert list(ledger.replay()) == list(range(10))


class TestReplication:
    def test_entries_reach_write_quorum(self):
        manager = LedgerManager(num_bookies=3, write_quorum=2, ack_quorum=2)
        ledger = manager.create_ledger()
        ledger.append("x")
        replicas = sum(
            1 for b in manager.bookies if b.fetch(ledger.ledger_id, 0) is not None
        )
        assert replicas == 2

    def test_survives_single_bookie_crash(self):
        manager = LedgerManager(num_bookies=3, write_quorum=2, ack_quorum=2)
        ledger = manager.create_ledger()
        for i in range(20):
            ledger.append(i)
        manager.bookies[0].crash()
        assert list(ledger.replay()) == list(range(20))

    def test_append_fails_below_ack_quorum(self):
        manager = LedgerManager(num_bookies=3, write_quorum=2, ack_quorum=2)
        ledger = manager.create_ledger()
        manager.bookies[0].crash()
        manager.bookies[1].crash()
        with pytest.raises(NotEnoughBookiesError):
            ledger.append("x")

    def test_append_resumes_after_restart(self):
        manager = LedgerManager(num_bookies=3, write_quorum=2, ack_quorum=2)
        ledger = manager.create_ledger()
        manager.bookies[0].crash()
        manager.bookies[1].crash()
        manager.bookies[1].restart()
        ledger.append("recovered")
        assert ledger.entry_count == 1

    def test_total_data_loss_detected(self):
        manager = LedgerManager(num_bookies=2, write_quorum=2, ack_quorum=2)
        ledger = manager.create_ledger()
        ledger.append("x")
        manager.bookies[0].crash()
        manager.bookies[1].crash()
        manager.bookies[0].restart()
        manager.bookies[1].restart()
        with pytest.raises(NotEnoughBookiesError):
            ledger.read(0)

    def test_invalid_quorum_config(self):
        with pytest.raises(ValueError):
            LedgerManager(num_bookies=2, write_quorum=3, ack_quorum=2)
        with pytest.raises(ValueError):
            LedgerManager(num_bookies=3, write_quorum=2, ack_quorum=0)


class TestLifecycle:
    def test_closed_ledger_rejects_appends(self):
        ledger = LedgerManager().create_ledger()
        ledger.append("x")
        ledger.close()
        with pytest.raises(LedgerClosedError):
            ledger.append("y")
        assert ledger.is_closed

    def test_manager_tracks_ledgers(self):
        manager = LedgerManager()
        l1 = manager.create_ledger()
        l2 = manager.create_ledger()
        assert l1.ledger_id != l2.ledger_id
        assert manager.get_ledger(l1.ledger_id) is l1
        assert len(list(manager.ledgers())) == 2

    def test_last_entry_id(self):
        ledger = LedgerManager().create_ledger()
        assert ledger.last_entry_id() is None
        ledger.append("x")
        assert ledger.last_entry_id() == 0
