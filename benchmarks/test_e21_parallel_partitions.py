"""E21 — pluggable partition executors + locality-aware sharding.

Not a paper figure: this closes the two levers ROADMAP left open after
the cross-partition batch protocol (E19).  The protocol already costs
one bulk validation round and one bulk install round per partition per
flush, but the seed coordinator drove every round *inline, serially* —
partition count bought memory sharding and round amortization, never
round overlap — and row placement was pure hash, so multi-row
footprints scattered across partitions no matter how co-accessed their
keys were.

Two measured claims:

* **Executor overlap** — with a per-round injected latency modeling the
  per-partition commit-table RPC of a distributed deployment
  (``PartitionedOracle(round_latency=...)``; ``time.sleep`` releases
  the GIL, so overlap is real wall-clock, not bookkeeping), the
  ``ParallelExecutor`` sustains >= 1.5x the ``SerialExecutor`` at 4
  partitions on a >=50 %-cross workload at batch 32: the serial side
  pays ~``2 * partitions`` round latencies per flush, the parallel side
  ~2 (one per phase).  Decisions are identical — the zero-tolerance leg
  here pins it at benchmark scale, the hypothesis suite pins full
  state.
* **Sharding locality** — on a group-local YCSB workload (every
  transaction confined to one key group), ``DirectorySharding`` pinning
  each group to one partition drives ``cross_partition_fraction()``
  below 0.05 (from >=50 % under hash placement), converting cross
  traffic into aligned traffic outright instead of amortizing it.

Set ``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` target) for a
tiny-sized sanity run with correspondingly relaxed bars.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.bench.frontend_bench import (
    bench_executor_rounds,
    make_specs,
    median_speedup,
    paired_executor_speedups,
)
from repro.core.partitioned import PartitionedOracle
from repro.core.sharding import DirectorySharding, HashSharding, RangeSharding
from repro.server import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL
from repro.workload.ycsb import ycsb

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_REQUESTS = 640 if SMOKE else 6_000
PAIRS = 2 if SMOKE else 3
REPEATS = 1 if SMOKE else 2
#: the smoke bar is ratcheted to ~25% below the measured smoke ratio
#: (BENCH_smoke.json), so hot-path regressions fail fast at tiny sizes.
SPEEDUP_BAR = 2.4 if SMOKE else 1.5
PARTITIONS = 4
#: the modeled per-partition round RPC (1 ms ~ an in-datacenter
#: commit-table visit); the sleep releases the GIL.
ROUND_LATENCY = 1e-3

#: group-local workload shape for the sharding leg.
GROUP_KEYSPACE = 2_048 if SMOKE else 4_096
GROUPS = 8
GROUP_TXNS = 1_000 if SMOKE else 4_000


@pytest.mark.figure("e21")
def test_e21_parallel_executor_speedup(benchmark, print_header):
    ratios = benchmark.pedantic(
        lambda: paired_executor_speedups(
            level="wsi",
            batch_size=32,
            pairs=PAIRS,
            num_requests=NUM_REQUESTS,
            partitions=PARTITIONS,
            round_latency=ROUND_LATENCY,
            cross_every=1,
        ),
        rounds=1,
        iterations=1,
    )
    print_header(
        "E21 — parallel vs serial partition rounds with injected per-round "
        "latency (wall clock)"
    )
    specs = make_specs(NUM_REQUESTS)
    rows = []
    for executor in ("serial", "parallel"):
        r = bench_executor_rounds(
            "wsi",
            specs,
            batch_size=32,
            partitions=PARTITIONS,
            repeats=REPEATS,
            executor=executor,
            round_latency=ROUND_LATENCY,
            cross_every=1,
        )
        rows.append(
            (
                executor,
                f"{100 * r.cross_fraction:.0f}%",
                f"{r.ops_per_sec:,.0f}",
                f"{r.us_per_op:.2f}",
                r.commits,
                r.aborts,
            )
        )
    print(
        format_table(
            ["executor", "cross frac", "ops/s", "us/op", "commits", "aborts"],
            rows,
            title=(
                f"all-cross workload, {PARTITIONS} partitions, "
                f"{NUM_REQUESTS} requests, batch 32, "
                f"{1000 * ROUND_LATENCY:.0f} ms/round injected"
            ),
        )
    )
    print()
    print("paired WSI speedups at batch 32 (parallel vs serial rounds):")
    print("  " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(
        f"  median: {median_speedup(ratios):.2f}x "
        f"(acceptance bar: {SPEEDUP_BAR}x; ideal ~{PARTITIONS}x)"
    )
    assert median_speedup(ratios) >= SPEEDUP_BAR
    record("e21", median_speedup=median_speedup(ratios), bar=SPEEDUP_BAR)


@pytest.mark.figure("e21")
def test_e21_decisions_identical_across_executors(print_header):
    """Zero-tolerance leg: executor choice is performance policy only —
    the hypothesis suite pins full state, this pins decision and
    cross-fraction counts at benchmark scale (no injected latency, so
    the leg is fast)."""
    print_header("E21b — decision equality, serial vs parallel executor")
    specs = make_specs(NUM_REQUESTS)
    runs = {
        executor: bench_executor_rounds(
            "wsi", specs, batch_size=32, partitions=PARTITIONS, repeats=1,
            executor=executor, round_latency=0.0, cross_every=1,
        )
        for executor in ("serial", "parallel")
    }
    serial, parallel = runs["serial"], runs["parallel"]
    assert parallel.commits == serial.commits
    assert parallel.aborts == serial.aborts
    assert parallel.cross_fraction == serial.cross_fraction
    print(
        f"  {serial.commits} commits / {serial.aborts} aborts / "
        f"{100 * serial.cross_fraction:.0f}% cross under both executors"
    )


def _drive_group_local(policy):
    """The group-local YCSB A workload through a partitioned frontend
    under one placement policy; returns the oracle for inspection."""
    workload = ycsb(
        "A", keyspace=GROUP_KEYSPACE, max_rows=8, seed=7, num_groups=GROUPS
    )
    oracle = PartitionedOracle(
        level="wsi", num_partitions=PARTITIONS, sharding=policy
    )
    frontend = OracleFrontend(oracle, max_batch=32, wal=BookKeeperWAL())
    for spec in workload.stream(GROUP_TXNS):
        frontend.submit_commit_nowait(spec.commit_request(frontend.begin()))
    frontend.flush()
    frontend.close()
    return oracle


@pytest.mark.figure("e21")
def test_e21_directory_sharding_collapses_cross_fraction(print_header):
    print_header(
        "E21c — locality-aware sharding on a group-local workload "
        "(cross-partition decision fraction)"
    )
    workload = ycsb(
        "A", keyspace=GROUP_KEYSPACE, max_rows=8, seed=7, num_groups=GROUPS
    )
    policies = [
        ("hash", HashSharding()),
        ("range", RangeSharding(GROUP_KEYSPACE)),
        (
            "directory",
            DirectorySharding(workload.group_directory(PARTITIONS)),
        ),
    ]
    rows = []
    fractions = {}
    decisions = {}
    for name, policy in policies:
        oracle = _drive_group_local(policy)
        fraction = oracle.cross_partition_fraction()
        fractions[name] = fraction
        decisions[name] = (oracle.stats.commits, oracle.stats.aborts)
        rows.append(
            (
                name,
                f"{100 * fraction:.1f}%",
                oracle.stats.commits,
                oracle.stats.aborts,
            )
        )
    print(
        format_table(
            ["sharding", "cross frac", "commits", "aborts"],
            rows,
            title=(
                f"YCSB A, {GROUPS} contiguous key groups over "
                f"{GROUP_KEYSPACE} keys, {PARTITIONS} partitions"
            ),
        )
    )
    # placement never changes decisions, only traffic shape
    assert decisions["hash"] == decisions["range"] == decisions["directory"]
    # hash placement scatters each group across partitions...
    assert fractions["hash"] >= 0.5
    # ...directory affinity converts it to aligned traffic outright
    # (range agrees here because the groups are contiguous)
    assert fractions["directory"] < 0.05
    assert fractions["range"] < 0.05


@pytest.mark.figure("e21")
def test_e21_round_occupancy_observable(print_header):
    """The overlap is *measured*, not inferred: per-flush occupancy
    (max rounds on one partition <= 2) and executor wall-clock per
    phase land on FrontendStats, and the parallel executor's phase
    wall-clock undercuts the serial sum of rounds."""
    print_header("E21d — per-partition round occupancy and phase wall-clock")
    specs = make_specs(NUM_REQUESTS // 4)
    walls = {}
    for executor in ("serial", "parallel"):
        oracle = PartitionedOracle(
            level="wsi",
            num_partitions=PARTITIONS,
            executor=executor,
            round_latency=ROUND_LATENCY,
        )
        frontend = OracleFrontend(oracle, max_batch=32, wal=BookKeeperWAL())
        from repro.bench.frontend_bench import make_cross_heavy_requests

        for request in make_cross_heavy_requests(
            frontend, specs, PARTITIONS, cross_every=1
        ):
            frontend.submit_commit_nowait(request)
        frontend.flush()
        stats = frontend.stats
        walls[executor] = (
            stats.partition_validate_seconds + stats.partition_install_seconds
        )
        per_flush_rounds = (
            stats.partition_check_rounds + stats.partition_install_rounds
        ) / stats.batches
        print(
            f"  {executor:>8}: {stats.batches} flushes, "
            f"{per_flush_rounds:.2f} rounds/flush, "
            f"max {stats.max_partition_rounds_seen} rounds on one partition, "
            f"phase wall-clock {1000 * walls[executor]:.0f} ms total"
        )
        assert stats.max_partition_rounds_seen <= 2
        frontend.close()
    # the serial side pays every round back-to-back; parallel overlaps
    assert walls["parallel"] < walls["serial"]
