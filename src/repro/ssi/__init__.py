"""Serializable snapshot isolation (Cahill et al.), the §7.1 comparator.

Public surface:

* :class:`SerializableSIOracle` — SI's write-write check plus
  commit-time dangerous-structure (pivot) detection.
* :class:`SSIEngine` — the frontend-ready
  :class:`~repro.core.engine.CommitEngine` adapter (readers routed to
  the engine, begin leases disabled).
"""

from repro.ssi.cahill import SerializableSIOracle
from repro.ssi.engine import SSIEngine

__all__ = ["SerializableSIOracle", "SSIEngine"]
