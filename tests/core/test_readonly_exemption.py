"""§4.1 condition 3 regression: an empty write set must NEVER abort.

The paper's conflict conditions require "neither txn is read-only"; §5.1
implements the exemption by having read-only clients submit empty sets.
This suite pins the stronger server-side guarantee: even a read-only
client that *does* submit its (stale) read set commits under every
oracle — plain SI/WSI, the bounded (Tmax) oracle, the partitioned
oracle, and both frontend paths — with no conflict check, no commit
timestamp, and no WAL record.
"""

import pytest

from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.server import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL


def stale_reader_request(oracle, rows):
    """Begin a reader, then let a writer overwrite every row it read."""
    reader = oracle.begin()
    writer = oracle.begin()
    result = oracle.commit(CommitRequest(writer, write_set=frozenset(rows)))
    assert result.committed
    return CommitRequest(reader, read_set=frozenset(rows))


@pytest.mark.parametrize("level", ["si", "wsi"])
@pytest.mark.parametrize("bounded", [False, True])
def test_read_only_with_stale_reads_commits(level, bounded):
    oracle = make_oracle(level, bounded=bounded, max_rows=8)
    request = stale_reader_request(oracle, ["x", "y"])
    checked_before = oracle.stats.rows_checked
    result = oracle.commit(request)
    assert result.committed
    assert result.commit_ts is None
    assert oracle.stats.read_only_commits == 1
    assert oracle.stats.aborts == 0
    assert oracle.stats.rows_checked == checked_before  # no check at all


@pytest.mark.parametrize("level", ["si", "wsi"])
def test_read_only_commits_even_below_tmax(level):
    # The bounded oracle normally aborts pessimistically when a checked
    # row was evicted and Tmax exceeds the start timestamp — but a
    # read-only transaction must be exempt from even that.
    oracle = make_oracle(level, bounded=True, max_rows=1)
    reader = oracle.begin()
    for row in ("a", "b", "c"):  # force evictions: Tmax > reader
        ts = oracle.begin()
        assert oracle.commit(
            CommitRequest(ts, write_set=frozenset([row]))
        ).committed
    assert oracle.tmax > reader
    result = oracle.commit(CommitRequest(reader, read_set=frozenset(["a", "b"])))
    assert result.committed
    assert result.commit_ts is None


@pytest.mark.parametrize("level", ["si", "wsi"])
def test_read_only_with_stale_reads_commits_partitioned(level):
    oracle = PartitionedOracle(level=level, num_partitions=3)
    request = stale_reader_request(oracle, ["x", "y", "z"])
    result = oracle.commit(request)
    assert result.committed
    assert result.commit_ts is None
    assert oracle.stats.read_only_commits == 1
    assert oracle.stats.aborts == 0


@pytest.mark.parametrize(
    "make",
    [
        lambda: make_oracle("wsi"),
        lambda: make_oracle("wsi", bounded=True, max_rows=4),
        lambda: PartitionedOracle(level="wsi", num_partitions=2),
    ],
    ids=["plain", "bounded", "partitioned"],
)
def test_read_only_with_stale_reads_commits_in_decide_batch(make):
    oracle = make()
    request = stale_reader_request(oracle, ["x", "y"])
    (result,) = oracle.decide_batch([request])
    assert result.committed
    assert result.commit_ts is None


def test_read_only_with_reads_takes_frontend_fast_path_and_no_wal():
    wal = BookKeeperWAL()
    oracle = make_oracle("wsi", wal=wal)
    frontend = OracleFrontend(oracle)
    request = stale_reader_request(oracle, ["x"])
    records_before = wal.record_count
    future = frontend.submit_commit(request)
    # resolved immediately, without occupying batch space or WAL bytes
    assert future.done and future.committed
    assert future.commit_ts is None
    assert frontend.pending_count == 0
    assert frontend.stats.read_only_fast_path == 1
    assert wal.record_count == records_before
