"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import create_system


@pytest.fixture
def wsi_system():
    """A fresh write-snapshot-isolation system."""
    return create_system("wsi")


@pytest.fixture
def si_system():
    """A fresh snapshot-isolation system."""
    return create_system("si")


@pytest.fixture(params=["si", "wsi"])
def any_system(request):
    """Parametrized over both isolation levels."""
    return create_system(request.param)
