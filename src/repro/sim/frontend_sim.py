"""Simulated group-commit frontend: engine-driven flush timing.

Wires :class:`repro.server.OracleFrontend` into the discrete-event
engine: the frontend's flush-interval trigger is scheduled with
``engine.call_in`` (no polling), client sessions wait on commit futures
bridged to engine events, and every flushed batch occupies the oracle's
critical-section resource for the *batch* service time before its single
WAL write makes it durable — the two amortizations of §6.3/Appendix A,
in simulated time.

This is the timing companion to the wall-clock microbench in
:mod:`repro.bench.frontend_bench`: that one measures real CPU cost,
this one reproduces queueing behaviour (latency vs. batch size, timer
vs. count flushes under light vs. heavy load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.partitioned import PartitionedOracle
from repro.core.sharding import ShardingPolicy
from repro.core.status_oracle import make_oracle
from repro.server.frontend import FlushedBatch, OracleFrontend
from repro.sim.engine import Engine, Resource
from repro.sim.latency import LatencyModel, paper_latency_model
from repro.workload.generator import WorkloadGenerator, complex_workload


@dataclass
class GroupCommitSimResult:
    """Measured behaviour of the batched oracle for one configuration."""

    level: str
    batch_size: int
    num_clients: int
    throughput_tps: float
    avg_latency_ms: float
    p99_latency_ms: float
    abort_rate: float
    commits: int
    aborts: int
    avg_batch: float
    flushes_by_count: int
    flushes_by_timer: int
    oracle_utilization: float

    def as_row(self) -> str:
        return (
            f"{self.level:>4} batch={self.batch_size:>4} "
            f"tput={self.throughput_tps:>9.0f} TPS "
            f"lat={self.avg_latency_ms:>7.3f} ms "
            f"avg_batch={self.avg_batch:>6.1f} "
            f"timer/count={self.flushes_by_timer}/{self.flushes_by_count}"
        )


class GroupCommitSim:
    """Closed-loop clients submitting through an OracleFrontend.

    Args:
        batch_size: the frontend's count trigger (``max_batch``).
        flush_interval: the frontend's time trigger, fired by the engine.
        num_clients / outstanding_per_client: closed-loop population, as
            in the Fig. 5 setup (§6.3).
        per_request: drive the frontend's per-request decision path
            instead of the ``decide_batch`` engine (the E18 baseline) —
            simulated timing is identical (the latency model prices the
            batch, not the Python loop); this flag exists so queueing
            studies can pin that both paths decide the same things.
        begin_lease: the frontend's begin-lease size (benchmark E20's
            lever).  As with ``per_request``, simulated timing is
            identical at any lease size — the latency model prices
            batches and start-timestamp service, not the Python-level
            begin round-trip the lease removes (E20 measures that on
            the wall clock); the flag exists so queueing studies can
            pin that leased and per-call begin paths plumb decisions
            identically through the engine.
        num_partitions: ``0`` (default) runs the monolithic oracle; a
            positive count runs a
            :class:`~repro.core.partitioned.PartitionedOracle` backend,
            and each flush additionally occupies the critical section
            for its protocol-round cost
            (:meth:`~repro.sim.latency.LatencyModel.partition_round_cost`
            — zero unless the latency model prices
            ``partition_round``).
        executor: ``"serial"`` or ``"parallel"`` — how the modeled
            coordinator drives partition rounds.  This is a *pricing*
            choice: serial pays one ``partition_round`` per round,
            parallel one per phase (the overlap).  The backend itself
            always runs the serial executor — real threads have no
            place in a discrete-event simulation, and executor choice
            never changes decisions (the equivalence suite pins it).
        sharding: optional
            :class:`~repro.core.sharding.ShardingPolicy` for the
            partitioned backend (placement changes which rounds exist,
            which the round pricing then reflects).
    """

    def __init__(
        self,
        level: str = "wsi",
        batch_size: int = 32,
        num_clients: int = 4,
        outstanding_per_client: int = 25,
        flush_interval: float = 0.005,
        keyspace: int = 20_000_000,
        latency: Optional[LatencyModel] = None,
        seed: int = 42,
        warmup: float = 0.1,
        measure: float = 0.5,
        per_request: bool = False,
        begin_lease: int = 1,
        num_partitions: int = 0,
        executor: str = "serial",
        sharding: Optional[ShardingPolicy] = None,
    ) -> None:
        if executor not in ("serial", "parallel"):
            raise ValueError("executor must be 'serial' or 'parallel'")
        self.level = level
        self.batch_size = batch_size
        self.num_clients = num_clients
        self.outstanding = outstanding_per_client
        self.latency = latency or paper_latency_model(seed=seed)
        self.warmup = warmup
        self.measure = measure
        self.engine = Engine()
        self.num_partitions = num_partitions
        self._parallel_rounds = executor == "parallel"
        if num_partitions:
            # executor pinned serial (not left to REPRO_EXECUTOR): the
            # sim prices overlap, it must never spawn real threads.
            self.oracle = PartitionedOracle(
                level=level,
                num_partitions=num_partitions,
                sharding=sharding,
                executor="serial",
            )
        else:
            self.oracle = make_oracle(level)
        self.frontend = OracleFrontend(
            self.oracle,
            max_batch=batch_size,
            flush_interval=flush_interval,
            clock=lambda: self.engine.now,
            scheduler=self.engine.call_in,
            per_request=per_request,
            begin_lease=begin_lease,
        )
        self.frontend.on_flush(self._batch_flushed)
        self.critical_section = Resource(self.engine, capacity=1, name="oracle-cs")
        self.workload: WorkloadGenerator = complex_workload(
            distribution="uniform", keyspace=keyspace, seed=seed
        )
        self._latencies: List[float] = []
        self._commits = 0
        self._aborts = 0

    # ------------------------------------------------------------------
    # batch timing: one critical-section occupancy + one WAL write
    # ------------------------------------------------------------------
    def _batch_flushed(self, batch: FlushedBatch) -> None:
        batch.durable_event = self.engine.event()
        self.engine.process(self._batch_timing(batch))

    def _batch_timing(self, batch: FlushedBatch):
        lat = self.latency
        service = lat.oracle_service_batch(
            self.level, batch.size, batch.rows_checked, batch.rows_updated
        )
        rounds = batch.protocol_rounds
        if rounds is not None:
            # Partitioned flush: add the per-partition protocol-round
            # RPCs — serial coordinators pay every round, a parallel
            # executor one overlapped round per phase.
            service += lat.partition_round_cost(
                rounds.check_rounds,
                rounds.install_rounds,
                self._parallel_rounds,
            )
        yield self.critical_section.acquire()
        yield self.engine.timeout(lat.sample(service))
        self.critical_section.release()
        if batch.wal_written:
            yield self.engine.timeout(lat.sample(lat.wal_write))
        batch.durable_event.succeed()

    # ------------------------------------------------------------------
    # client process
    # ------------------------------------------------------------------
    def _client_stream(self):
        engine = self.engine
        lat = self.latency
        frontend = self.frontend
        while True:
            started = engine.now
            yield engine.timeout(lat.sample_start_timestamp())
            start_ts = frontend.begin()
            spec = self.workload.next_transaction()
            future = frontend.submit_commit(spec.commit_request(start_ts))
            if not future.done:
                bridge = engine.event()
                future.add_done_callback(lambda _f, ev=bridge: ev.succeed())
                yield bridge
            batch = future.batch
            if batch is not None:
                # group commit: acknowledged when the batch is durable
                yield batch.durable_event
            if engine.now >= self.warmup:
                self._latencies.append(engine.now - started)
                if future.committed:
                    self._commits += 1
                else:
                    self._aborts += 1

    # ------------------------------------------------------------------
    def run(self) -> GroupCommitSimResult:
        for _ in range(self.num_clients * self.outstanding):
            self.engine.process(self._client_stream())
        self.engine.run(until=self.warmup + self.measure)
        total = self._commits + self._aborts
        lat_ms = sorted(1000 * x for x in self._latencies)
        avg = sum(lat_ms) / len(lat_ms) if lat_ms else 0.0
        p99 = lat_ms[int(0.99 * (len(lat_ms) - 1))] if lat_ms else 0.0
        stats = self.frontend.stats
        return GroupCommitSimResult(
            level=self.level,
            batch_size=self.batch_size,
            num_clients=self.num_clients,
            throughput_tps=total / self.measure if self.measure > 0 else 0.0,
            avg_latency_ms=avg,
            p99_latency_ms=p99,
            abort_rate=self._aborts / total if total else 0.0,
            commits=self._commits,
            aborts=self._aborts,
            avg_batch=stats.avg_batch_size(),
            flushes_by_count=stats.flushes_by_count,
            flushes_by_timer=stats.flushes_by_timer,
            oracle_utilization=self.critical_section.utilization(),
        )


def sweep_group_commit(
    level: str,
    batch_sizes: Optional[List[int]] = None,
    num_clients: int = 4,
    outstanding_per_client: int = 25,
    seed: int = 42,
    measure: float = 0.4,
    keyspace: int = 20_000_000,
) -> List[GroupCommitSimResult]:
    """Throughput/latency vs. batch size (batch 1 = no group commit)."""
    sizes = batch_sizes or [1, 8, 32, 128]
    results = []
    for batch_size in sizes:
        sim = GroupCommitSim(
            level=level,
            batch_size=batch_size,
            num_clients=num_clients,
            outstanding_per_client=outstanding_per_client,
            seed=seed,
            measure=measure,
            keyspace=keyspace,
        )
        results.append(sim.run())
    return results
