"""Correctness tooling: invariant lint passes + dynamic race detection.

This package machine-checks the invariants the repo has historically
lost to silent bugs — the MetaSys idea (PAPERS.md) of a small
cross-layer checking interface that every layer is audited against on
every run, instead of a per-bug pile of regression pins.

Two halves:

* :mod:`repro.analysis.lint` — AST-based static passes, run by
  ``python -m repro.analysis`` / ``make lint`` over the whole ``src/``
  tree (first leg of ``make check``, and CI).
* :mod:`repro.analysis.racecheck` — an opt-in (``REPRO_RACECHECK=1``)
  dynamic lock-order/race detector wrapping the real locks in the
  partitioned oracle, the frontend, and the WAL.

Invariants
==========

Each pass descends from a bug this repo actually shipped and then
pinned; the linter turns the pin into a standing rule:

``no-builtin-hash``
    Routing/sharding never uses builtin ``hash()`` — it is salted per
    process, so placement derived from it disagrees across restarts.
    Use :func:`repro.core.sharding.stable_hash`.  Descends from PR 3
    (cross-partition placement broke under ``PYTHONHASHSEED``
    variation).  ``__hash__`` implementations are exempt; the two
    intentional numeric-identity uses in ``core/sharding.py`` carry
    reviewed skips.

``deterministic-protocol``
    No wall-clock reads, randomness, or set-iteration order inside the
    decision paths (``core/``, ``percolator/``, ``ssi/``): WAL replay
    and the engine-equivalence suites assume a batch re-decides
    identically.  Descends from PR 4 (timestamp reuse across recovery)
    and the PR 3 hash-order pins.  ``time.sleep``/``monotonic``/
    ``perf_counter`` stay legal — latency modeling is policy, not
    decision input.

``guarded-by``
    Hot shared state declared with ``# guarded-by: <lock>`` (the
    per-shard ``_last_commit`` dicts, the frontend ``_pending`` batch,
    the WAL buffer) mutates only under its owning lock.  Descends from
    PR 5 (``ParallelExecutor`` made the shard rounds genuinely
    concurrent).  Coordinator-only serial paths carry reviewed skips.

``future-discipline``
    ``CommitFuture``/``HAFuture`` settle only through the blessed
    resolve paths — no direct ``._result``/``._done`` stores.  Descends
    from PR 6 (a crashed flush left futures in permanent
    ``DecisionPending``).

``no-bare-assert``
    Protocol code raises typed :mod:`repro.core.errors`
    (:class:`~repro.core.errors.InvariantViolation`), never bare
    ``assert`` — asserts vanish under ``python -O``, which is exactly
    when a production deployment would run.

The dynamic half (``racecheck``) covers what static scoping cannot: it
records per-thread lock acquisition *edges* across the per-shard,
frontend, and WAL locks, fails on lock-order cycles (potential
deadlock even if the bad interleaving never fired), and flags any
registered shared-state access performed with no lock held.  The
``tests/analysis/`` stress test drives a ``ParallelExecutor``
partitioned oracle through an HA failover under the checker.
"""

from repro.analysis.lint import ALL_PASSES, LintFinding, lint_file, lint_source, lint_tree
from repro.analysis.racecheck import (
    RaceChecker,
    RaceCheckError,
    TrackedLock,
    active_checker,
    checking,
    make_lock,
)

__all__ = [
    "ALL_PASSES",
    "LintFinding",
    "lint_file",
    "lint_source",
    "lint_tree",
    "RaceChecker",
    "RaceCheckError",
    "TrackedLock",
    "active_checker",
    "checking",
    "make_lock",
]
