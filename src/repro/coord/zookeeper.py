"""A ZooKeeper-flavoured coordination service.

The paper's testbed dedicates a machine to ZooKeeper, "a coordination
service that is used by both HBase and BookKeeper" (§6), and Appendix A
relies on a fresh status-oracle instance taking over after a failure —
which in the real deployment is arbitrated through ZooKeeper leader
election.  This module provides the minimum faithful substrate for that:

* a hierarchical znode tree with versioned writes;
* **ephemeral** znodes tied to client sessions (session expiry deletes
  them — the failure-detection primitive);
* **sequential** znodes (monotonic per-parent counters);
* one-shot **watches** on data changes and children changes;
* the standard leader-election recipe built from the above.

Time/liveness is logical: a session dies when :meth:`ZooKeeper.expire_session`
is called (the test/simulator decides when), not via wall-clock
heartbeats.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple


class ZKError(Exception):
    """Base class for coordination-service errors."""


class NoNodeError(ZKError):
    pass


class NodeExistsError(ZKError):
    pass


class NotEmptyError(ZKError):
    pass


class BadVersionError(ZKError):
    pass


class SessionExpiredError(ZKError):
    pass


class EventType(enum.Enum):
    CREATED = "created"
    DELETED = "deleted"
    DATA_CHANGED = "data-changed"
    CHILDREN_CHANGED = "children-changed"


@dataclass(frozen=True)
class WatchEvent:
    type: EventType
    path: str


@dataclass
class _Znode:
    data: bytes
    version: int = 0
    ephemeral_owner: Optional[int] = None  # session id, None = persistent
    sequential_counter: int = 0  # for children created with sequence=True


class Session:
    """A client session; ephemeral nodes die with it."""

    def __init__(self, zk: "ZooKeeper", session_id: int) -> None:
        self._zk = zk
        self.session_id = session_id
        self.alive = True

    def _check(self) -> None:
        if not self.alive:
            raise SessionExpiredError(f"session {self.session_id} expired")

    # convenience proxies -------------------------------------------------
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequence: bool = False) -> str:
        self._check()
        return self._zk._create(self, path, data, ephemeral, sequence)

    def delete(self, path: str, version: int = -1) -> None:
        self._check()
        self._zk._delete(path, version)

    def get(self, path: str, watch: Optional[Callable[[WatchEvent], None]] = None
            ) -> Tuple[bytes, int]:
        self._check()
        return self._zk._get(path, watch)

    def set(self, path: str, data: bytes, version: int = -1) -> int:
        self._check()
        return self._zk._set(path, data, version)

    def exists(self, path: str,
               watch: Optional[Callable[[WatchEvent], None]] = None) -> bool:
        self._check()
        return self._zk._exists(path, watch)

    def get_children(self, path: str,
                     watch: Optional[Callable[[WatchEvent], None]] = None
                     ) -> List[str]:
        self._check()
        return self._zk._get_children(path, watch)

    def close(self) -> None:
        if self.alive:
            self._zk.expire_session(self.session_id)


class ZooKeeper:
    """The coordination server: znode tree + sessions + watches."""

    def __init__(self) -> None:
        self._nodes: Dict[str, _Znode] = {"/": _Znode(b"")}
        self._sessions: Dict[int, Session] = {}
        self._next_session = 1
        self._data_watches: Dict[str, List[Callable[[WatchEvent], None]]] = {}
        self._child_watches: Dict[str, List[Callable[[WatchEvent], None]]] = {}

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def connect(self) -> Session:
        session = Session(self, self._next_session)
        self._sessions[self._next_session] = session
        self._next_session += 1
        return session

    def expire_session(self, session_id: int) -> None:
        """Kill a session: its ephemeral nodes vanish (failure detection)."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        session.alive = False
        doomed = [
            path for path, node in self._nodes.items()
            if node.ephemeral_owner == session_id
        ]
        # delete deepest-first so parents empty out correctly
        for path in sorted(doomed, key=len, reverse=True):
            self._delete(path, -1)

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    # znode operations
    # ------------------------------------------------------------------
    @staticmethod
    def _parent_of(path: str) -> str:
        parent = path.rsplit("/", 1)[0]
        return parent or "/"

    @staticmethod
    def _validate(path: str) -> None:
        if not path.startswith("/") or (path != "/" and path.endswith("/")):
            raise ZKError(f"invalid path {path!r}")

    def _create(self, session: Session, path: str, data: bytes,
                ephemeral: bool, sequence: bool) -> str:
        self._validate(path)
        parent_path = self._parent_of(path)
        parent = self._nodes.get(parent_path)
        if parent is None:
            raise NoNodeError(f"parent {parent_path} does not exist")
        if parent.ephemeral_owner is not None:
            raise ZKError("ephemeral nodes cannot have children")
        if sequence:
            path = f"{path}{parent.sequential_counter:010d}"
            parent.sequential_counter += 1
        if path in self._nodes:
            raise NodeExistsError(path)
        self._nodes[path] = _Znode(
            data, ephemeral_owner=session.session_id if ephemeral else None
        )
        self._fire_child_watches(parent_path)
        self._fire_data_watches(path, EventType.CREATED)
        return path

    def _delete(self, path: str, version: int) -> None:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        if any(self._parent_of(p) == path for p in self._nodes if p != "/"):
            raise NotEmptyError(path)
        if version != -1 and node.version != version:
            raise BadVersionError(f"{path}: {node.version} != {version}")
        del self._nodes[path]
        self._fire_data_watches(path, EventType.DELETED)
        self._fire_child_watches(self._parent_of(path))

    def _get(self, path: str, watch) -> Tuple[bytes, int]:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        if watch is not None:
            self._data_watches.setdefault(path, []).append(watch)
        return node.data, node.version

    def _set(self, path: str, data: bytes, version: int) -> int:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        if version != -1 and node.version != version:
            raise BadVersionError(f"{path}: {node.version} != {version}")
        node.data = data
        node.version += 1
        self._fire_data_watches(path, EventType.DATA_CHANGED)
        return node.version

    def _exists(self, path: str, watch) -> bool:
        if watch is not None:
            self._data_watches.setdefault(path, []).append(watch)
        return path in self._nodes

    def _get_children(self, path: str, watch) -> List[str]:
        if path not in self._nodes:
            raise NoNodeError(path)
        if watch is not None:
            self._child_watches.setdefault(path, []).append(watch)
        prefix = path if path != "/" else ""
        children = [
            p[len(prefix) + 1:]
            for p in self._nodes
            if p != "/" and self._parent_of(p) == path
        ]
        return sorted(children)

    # ------------------------------------------------------------------
    # watches (one-shot, like real ZK)
    # ------------------------------------------------------------------
    def _fire_data_watches(self, path: str, event_type: EventType) -> None:
        for watch in self._data_watches.pop(path, []):
            watch(WatchEvent(event_type, path))

    def _fire_child_watches(self, path: str) -> None:
        for watch in self._child_watches.pop(path, []):
            watch(WatchEvent(EventType.CHILDREN_CHANGED, path))


class LeaderElection:
    """The standard ZooKeeper leader-election recipe.

    Each candidate creates an ephemeral-sequential node under the
    election path; the lowest sequence number is the leader.  Followers
    watch their immediate predecessor (not the leader) to avoid herd
    effects; when a session dies its node vanishes and the next candidate
    steps up.  This is how a standby status oracle learns it must recover
    from the WAL and take over (Appendix A).
    """

    def __init__(self, session: Session, election_path: str = "/election",
                 on_elected: Optional[Callable[[], None]] = None) -> None:
        self._session = session
        self._path = election_path
        self._on_elected = on_elected
        if not session.exists(election_path):
            try:
                session.create(election_path)
            except NodeExistsError:
                pass
        self.my_node = session.create(
            f"{election_path}/candidate-", ephemeral=True, sequence=True
        )
        self.is_leader = False
        self._check()

    def _my_name(self) -> str:
        return self.my_node.rsplit("/", 1)[1]

    def _check(self) -> None:
        me = self._my_name()
        while True:
            if not self._session.alive:
                return  # our own session died; we are out of the election
            children = self._session.get_children(self._path)
            if not children or children[0] == me:
                if not self.is_leader:
                    self.is_leader = True
                    if self._on_elected is not None:
                        self._on_elected()
                return
            predecessor = max(c for c in children if c < me)
            if self._session.exists(
                f"{self._path}/{predecessor}", watch=lambda event: self._check()
            ):
                return
            # The predecessor vanished between get_children and exists
            # (deletions race with this check in a real ensemble).  The
            # watch we just registered sits on a node that can never be
            # re-created — sequence numbers are monotonic — so waiting on
            # it would wedge this follower out of the election forever.
            # Re-run the check against fresh children instead.

    def resign(self) -> None:
        """Step out of the election (delete our candidate node)."""
        try:
            self._session.delete(self.my_node)
        except NoNodeError:
            pass
        self.is_leader = False
