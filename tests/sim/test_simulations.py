"""Tests for the microbenchmark, oracle, and cluster simulations.

These use short measurement windows — the full paper-scale runs live in
benchmarks/ — but still assert the qualitative behaviour each simulation
exists to produce.
"""

import pytest

from repro.sim.cluster_sim import ClusterSim
from repro.sim.microbench import run_microbench
from repro.sim.oracle_bench import OracleBenchSim


class TestMicrobench:
    def test_matches_paper_table(self):
        result = run_microbench(samples=800, seed=1)
        assert result.start_timestamp_ms == pytest.approx(0.17, rel=0.25)
        assert result.read_cold_ms == pytest.approx(38.8, rel=0.15)
        assert result.write_ms == pytest.approx(1.13, rel=0.20)
        assert result.commit_ms == pytest.approx(4.1, rel=0.20)

    def test_hot_read_cheaper_than_cold(self):
        result = run_microbench(samples=300, seed=2)
        assert result.read_hot_ms < result.read_cold_ms / 5

    def test_table_renders(self):
        table = run_microbench(samples=50, seed=3).as_table()
        assert "start timestamp" in table
        assert "38.8" in table  # paper column present


class TestOracleBench:
    def test_reports_throughput_and_latency(self):
        sim = OracleBenchSim(level="wsi", num_clients=1, measure=0.1, warmup=0.02)
        result = sim.run()
        assert result.throughput_tps > 1000
        assert result.avg_latency_ms > 0
        assert result.commits > 0

    def test_real_oracle_is_driven(self):
        sim = OracleBenchSim(level="wsi", num_clients=1, measure=0.1, warmup=0.02)
        result = sim.run()
        assert sim.oracle.stats.commits >= result.commits

    def test_more_clients_more_throughput_below_saturation(self):
        r1 = OracleBenchSim(
            level="si", num_clients=1, measure=0.1, warmup=0.02, seed=5
        ).run()
        r4 = OracleBenchSim(
            level="si", num_clients=4, measure=0.1, warmup=0.02, seed=5
        ).run()
        assert r4.throughput_tps > 1.5 * r1.throughput_tps

    def test_si_saturates_higher_than_wsi(self):
        # §6.3: the SI critical section is cheaper.
        si = OracleBenchSim(
            level="si", num_clients=16, measure=0.15, warmup=0.05, seed=6
        ).run()
        wsi = OracleBenchSim(
            level="wsi", num_clients=16, measure=0.15, warmup=0.05, seed=6
        ).run()
        assert si.throughput_tps > wsi.throughput_tps

    def test_result_row_renders(self):
        r = OracleBenchSim(level="si", num_clients=1, measure=0.05).run()
        assert "TPS" in r.as_row()


class TestClusterSim:
    def test_runs_and_reports(self):
        sim = ClusterSim(
            level="wsi",
            distribution="uniform",
            num_clients=10,
            measure=2.0,
            warmup=0.5,
            keyspace=100_000,
        )
        result = sim.run()
        assert result.throughput_tps > 5
        assert result.avg_latency_ms > 50  # cold reads dominate
        assert result.commits > 0

    def test_uniform_negligible_aborts(self):
        # §6.4: uniform on a large keyspace -> abort rate near zero.
        result = ClusterSim(
            level="wsi",
            distribution="uniform",
            num_clients=20,
            measure=3.0,
            warmup=0.5,
        ).run()
        assert result.abort_rate < 0.01

    def test_zipfian_produces_conflicts(self):
        result = ClusterSim(
            level="wsi",
            distribution="zipfian",
            num_clients=40,
            measure=3.0,
            warmup=0.5,
        ).run()
        assert result.abort_rate > 0.05

    def test_zipfian_beats_uniform_latency(self):
        # §6.5: cache hits make zipfian faster at equal load.
        uniform = ClusterSim(
            level="wsi", distribution="uniform", num_clients=40,
            measure=3.0, warmup=0.5, seed=9,
        ).run()
        zipf = ClusterSim(
            level="wsi", distribution="zipfian", num_clients=40,
            measure=3.0, warmup=0.5, seed=9,
        ).run()
        assert zipf.avg_latency_ms < uniform.avg_latency_ms
        assert zipf.cache_hit_rate > uniform.cache_hit_rate

    def test_deterministic_given_seed(self):
        kwargs = dict(
            level="si", distribution="uniform", num_clients=8,
            measure=1.0, warmup=0.2, keyspace=50_000, seed=123,
        )
        a = ClusterSim(**kwargs).run()
        b = ClusterSim(**kwargs).run()
        assert a.throughput_tps == b.throughput_tps
        assert a.avg_latency_ms == b.avg_latency_ms

    def test_row_rendering(self):
        r = ClusterSim(
            level="si", distribution="uniform", num_clients=5,
            measure=1.0, warmup=0.2, keyspace=50_000,
        ).run()
        assert "clients=" in r.as_row()
