"""History/anomaly checkers over *batched* runs of all three engines.

The E8 experiment classifies hand-written histories; these tests close
the loop at batch scale: drive every engine through the group-commit
frontend, reconstruct the execution as a :class:`~repro.history.History`
(ops while the window is open, decisions at the flush), and run the
anomaly/admissibility checkers over what each protocol actually
admitted.

The load-bearing discrimination is write skew (§3.1): two concurrent
transactions that each read the pair and write different halves.  A
ww-only validator — plain SI, and Percolator's lock/write-column check —
admits both sides; the paper's read-set validators — WSI, and Cahill
SSI's pivot rule — must refuse to serialize it.  Running 16 disjoint
skew pairs inside one batch-32 flush pins that the *bulk* decision
loops enforce exactly their protocol's rule, not something weaker.
"""

from __future__ import annotations

import pytest

from repro.core.engine import make_engine
from repro.history import (
    History,
    abort,
    allowed_under_si,
    allowed_under_wsi,
    commit,
    find_lost_updates,
    find_write_skew,
    is_serializable,
    read,
    write,
)
from repro.core.status_oracle import CommitRequest
from repro.server import OracleFrontend
from repro.workload import complex_workload

#: engine kind -> which read-set rule it enforces
ENGINES = ("si", "wsi", "percolator", "ssi")
WW_ONLY = ("si", "percolator")
READ_VALIDATING = ("wsi", "ssi")

PAIRS = 16
BATCH = 32


def _run_write_skew_batch(kind):
    """Submit 16 disjoint write-skew pairs in one batch-32 flush.

    Returns the reconstructed history plus the per-transaction ids of
    both sides of every pair.
    """
    engine = make_engine(kind)
    frontend = OracleFrontend(engine, max_batch=BATCH)
    ops = []
    futures = []
    txn_ids = []
    for pair in range(PAIRS):
        x, y = f"x{pair}", f"y{pair}"
        for side, written in ((0, x), (1, y)):
            txn = 2 * pair + side + 1
            start = frontend.begin()
            ops.append(read(txn, x))
            ops.append(read(txn, y))
            ops.append(write(txn, written))
            futures.append(
                (
                    txn,
                    frontend.submit_commit(
                        CommitRequest(
                            start_ts=start,
                            write_set=frozenset([written]),
                            read_set=frozenset([x, y]),
                        )
                    ),
                )
            )
            txn_ids.append(txn)
    frontend.flush()
    for txn, future in futures:
        ops.append(commit(txn) if future.result().committed else abort(txn))
    return History(ops), futures


@pytest.mark.parametrize("kind", WW_ONLY)
def test_ww_only_engines_admit_write_skew_at_batch_scale(kind):
    history, futures = _run_write_skew_batch(kind)
    # Disjoint write sets: every transaction commits under a ww rule.
    assert all(f.result().committed for _, f in futures)
    witnesses = find_write_skew(history)
    assert len(witnesses) == PAIRS
    # ... and that is exactly SI's documented behaviour, not a bug in
    # the batch loop: the history is SI-admissible but not serializable.
    assert allowed_under_si(history).allowed
    assert not is_serializable(history)
    # The skew pairs never overlap writes, so no lost updates sneak in.
    assert find_lost_updates(history) == []


@pytest.mark.parametrize("kind", READ_VALIDATING)
def test_read_validating_engines_reject_write_skew_at_batch_scale(kind):
    history, futures = _run_write_skew_batch(kind)
    # Each pair loses (at least) one side: WSI aborts the later
    # rw-conflicting commit, SSI aborts a pivot.
    per_pair_commits = {}
    for txn, future in futures:
        per_pair_commits.setdefault((txn - 1) // 2, []).append(
            future.result().committed
        )
    for pair, outcomes in per_pair_commits.items():
        assert not all(outcomes), f"pair {pair} fully committed under {kind}"
    assert find_write_skew(history) == []
    assert is_serializable(history)


@pytest.mark.parametrize("kind", ENGINES)
def test_batched_histories_satisfy_own_admissibility(kind):
    """Random contended workload, batch 32: the history each engine
    admits must replay cleanly under that engine's own rule, and the
    read-set validators' histories must be serializable."""
    engine = make_engine("oracle", level=kind) if kind in ("si", "wsi") \
        else make_engine(kind)
    frontend = OracleFrontend(engine, max_batch=BATCH)
    workload = complex_workload(keyspace=40, seed=97)

    ops = []
    futures = []
    specs = workload.batch(6 * BATCH)
    for offset in range(0, len(specs), BATCH):
        window = specs[offset:offset + BATCH]
        opened = []
        for i, spec in enumerate(window):
            txn = offset + i + 1
            start = frontend.begin()
            reads = frozenset(str(r) for r in spec.read_rows)
            writes = frozenset(str(r) for r in spec.write_rows)
            for item in sorted(reads):
                ops.append(read(txn, item))
            for item in sorted(writes):
                ops.append(write(txn, item))
            opened.append(
                (
                    txn,
                    frontend.submit_commit(
                        CommitRequest(
                            start_ts=start, write_set=writes, read_set=reads
                        )
                    ),
                )
            )
        frontend.flush()
        for txn, future in opened:
            result = future.result()
            ops.append(commit(txn) if result.committed else abort(txn))
            futures.append((txn, result))

    history = History(ops)
    assert any(not r.committed for _, r in futures), "workload uncontended"
    assert any(r.committed for _, r in futures)

    if kind in ("si", "percolator"):
        verdict = allowed_under_si(history)
        assert verdict.allowed, verdict.reason
    elif kind == "wsi":
        verdict = allowed_under_wsi(history)
        assert verdict.allowed, verdict.reason
        assert is_serializable(history)
    else:  # ssi
        assert is_serializable(history)
