"""Group-commit oracle frontend: batching without semantic change.

Why this layer exists
=====================

The paper's status oracle "executes the conflict detection algorithm in
a critical section" (§6.3) and owes its reported throughput to two
amortizations:

* the critical section is entered once for many queued commit requests,
  not once per request;
* the decisions are made durable in *groups* — Appendix A's BookKeeper
  policy batches records until 1 KB accumulates or 5 ms elapse, so one
  replicated ledger write persists ~32 commit records.

The seed :class:`~repro.core.status_oracle.StatusOracle` is faithful to
the *algorithms* but pays every cost per request.  This package restores
the amortization as a thin frontend layered over any oracle:

:class:`OracleFrontend`
    accepts begin/commit/abort requests from many logical client
    sessions, coalesces them into bounded batches (``max_batch`` count
    bound, ``flush_interval`` time bound in injected/simulated time),
    decides a whole batch inside one critical section, and persists the
    batch as a single ``group-commit`` WAL record
    (:data:`repro.wal.GROUP_COMMIT_RECORD`), which
    :meth:`~repro.core.status_oracle.StatusOracle.recover_from` replays.

:class:`ClientSession`
    the async client surface: ``commit()``/``abort()`` return a
    :class:`CommitFuture` that resolves when the batch flushes (group
    commit — no request is acknowledged before its decision is queued
    for durability).

Design rules
============

1. **The frontend never changes what is decided.**  Batch decisions are
   computed in submission order with exactly the backend's conflict
   rules, so the outcome — every commit/abort decision, every commit
   timestamp, the final ``lastCommit`` map, the commit table, and the
   ``OracleStats`` counters — is identical to feeding the unbatched
   backend the same requests in batch order.  For plain SI/WSI oracles
   the frontend inlines the decision loop for speed; for subclassed
   backends (bounded/Tmax, partitioned) it defers to their own
   check/decide hooks so refinements keep their exact semantics.
2. **Read-only transactions stay free** (§5.1): a commit request with
   empty read and write sets resolves immediately, never occupies batch
   space, and a batch of only such requests writes no WAL record.
3. **One WAL record per batch.**  At Appendix A's 32 B per decision the
   default 32-request batch fills exactly one 1 KB ledger entry, mapping
   one frontend flush onto one BookKeeper write.

How equivalence is tested
=========================

``tests/server/test_equivalence_properties.py`` drives random workloads
(hypothesis) through a frontend and replays the *same* requests, in the
order the frontend decided them, against an unbatched reference oracle —
for SI, WSI, and the bounded (Tmax) oracle — asserting equal decisions,
commit timestamps, ``lastCommit`` state and stats.  The stress tests add
timestamp-uniqueness and per-batch monotonicity invariants, and the
recovery tests crash the frontend mid-batch to check that WAL replay
restores exactly the durable prefix.  Benchmark E17
(``benchmarks/test_e17_group_commit.py``) measures the point of it all:
the batched frontend sustains multiples of the unbatched oracle's
wall-clock ops/sec.
"""

from repro.server.frontend import (
    CLIENT_ABORT,
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_BATCH,
    CommitFuture,
    FlushedBatch,
    FrontendStats,
    OracleFrontend,
)
from repro.server.session import ClientSession

__all__ = [
    "OracleFrontend",
    "ClientSession",
    "CommitFuture",
    "FlushedBatch",
    "FrontendStats",
    "CLIENT_ABORT",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_FLUSH_INTERVAL",
]
