#!/usr/bin/env python3
"""The high-availability serving tier surviving a leader crash.

Appendix A's failure story, end to end at the layer clients actually
talk to: three frontend candidates share one replicated WAL; the
leader batches commit requests (group commit); warm standbys tail the
WAL.  Mid-batch, the leader dies — and every in-flight request still
resolves: durable decisions settle from the WAL, never-durable ones
are transparently retried against the promoted standby with their
original timestamps (bounded exponential backoff, no reuse, no
double-decide).  Admission control keeps the queue bounded throughout.

Run:  PYTHONPATH=src python examples/ha_serving.py
"""

from repro.core.errors import Overloaded
from repro.core.status_oracle import CommitRequest
from repro.server import ReplicatedFrontend, RetryPolicy


def main() -> None:
    rf = ReplicatedFrontend(
        num_hosts=3,
        level="wsi",
        warm=True,
        max_batch=32,
        # bound below the batch size, so a burst hits admission before
        # the count trigger can drain it
        max_queue_depth=24,
        retry_policy=RetryPolicy(max_attempts=5, base_delay=0.001),
    )

    # --- steady state: a batch decided, synced, settled ---------------
    print("=== steady state ===")
    futures = []
    for i in range(8):
        ts = rf.begin()
        futures.append(
            rf.submit_commit(CommitRequest(ts, write_set=frozenset({f"row{i}"})))
        )
    print(f"  submitted 8 requests; none settled yet (group commit):"
          f" {sum(f.done for f in futures)} done")
    rf.flush()  # batch out + WAL synced -> durability settles futures
    print(f"  after flush: {sum(f.done for f in futures)}/8 settled, "
          f"all {'committed' if all(f.committed for f in futures) else '?'}")

    # --- keep the standbys warm --------------------------------------
    applied = rf.standby_catch_up()
    print(f"  standbys tailed the WAL: {applied} records pre-applied")

    # --- the leader dies mid-batch -----------------------------------
    print("\n=== leader crash mid-batch ===")
    leader = rf.active_host()
    inflight = []
    for i in range(5):
        ts = rf.begin()
        inflight.append(
            rf.submit_commit(CommitRequest(ts, write_set=frozenset({f"hot{i}"})))
        )
    print(f"  5 requests in the open batch of host {leader.host_id}; "
          f"killing it...")
    rf.kill_active()
    new_leader = rf.active_host()
    print(f"  host {new_leader.host_id} promoted: replayed only "
          f"{new_leader.recovered_records} record(s) at takeover "
          f"({new_leader.standby_records} were pre-applied while standing by)")
    print(f"  {rf.retried_requests} in-flight requests resubmitted "
          f"with their original timestamps")
    rf.flush()
    outcomes = [f.outcome() for f in inflight]
    retries = [f.retries for f in inflight]
    print(f"  all settled after failover: {outcomes}")
    print(f"  per-request retry counts:   {retries}")

    # --- admission control under a burst -----------------------------
    print("\n=== overload burst ===")
    accepted = rejected = 0
    for i in range(200):
        ts = rf.begin()
        try:
            rf.submit_commit(CommitRequest(ts, write_set=frozenset({f"b{i}"})))
            accepted += 1
        except Overloaded as exc:
            rejected += 1
            if rejected == 1:
                print(f"  typed pushback: {exc}")
            rf.flush()  # the drive loop drains; a real client backs off
    rf.flush()
    stats = rf.active_frontend.stats
    print(f"  burst of 200: {accepted} accepted, {rejected} shed; "
          f"queue high-water {stats.max_inflight_seen} (bound 24)")
    rf.close()
    print("\nno timestamp reused, no request stranded, queue bounded.")


if __name__ == "__main__":
    main()
