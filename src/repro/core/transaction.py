"""Client-side transactions: begin / read / write / commit.

This is the paper's transaction client.  The flow (§2.2, §5):

1. ``begin`` — obtain a start timestamp from the (status) oracle.
2. ``write`` — uncommitted data is written *directly into the main
   database* at the start timestamp (no private buffer round trip at
   commit, unlike classic OCC).
3. ``read`` — snapshot reads through :class:`~repro.mvcc.snapshot.SnapshotReader`
   using the client's replica of the commit table; every row actually
   read is added to the read set ("whether these rows were originally
   specified by their primary keys or by a search condition", §5).
4. ``commit`` — ship (start_ts, write set[, read set]) to the status
   oracle.  Under WSI a read-only transaction ships *empty* sets so it
   can never abort and costs the oracle nothing (§5.1).
5. on abort — the transaction's versions are removed from the store so
   later readers don't wade through them.

The same client works against a plain :class:`~repro.mvcc.store.MVCCStore`
or a sharded :class:`~repro.hbase.cluster.HBaseCluster` — anything
satisfying the small :class:`StorageBackend` protocol.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Hashable, Iterable, List, Optional, Protocol, Set

from repro.core.commit_table import ClientCommitView, CommitTable
from repro.core.conflicts import TxnFootprint
from repro.core.errors import (
    AbortException,
    ConflictAbort,
    InvalidTransactionState,
    InvariantViolation,
    TmaxAbort,
)
from repro.core.status_oracle import CommitRequest, StatusOracle
from repro.mvcc.snapshot import CommitStatusSource, SnapshotReader
from repro.mvcc.version import TOMBSTONE

RowKey = Hashable


class StorageBackend(Protocol):
    """Minimal store interface the transaction client needs."""

    def put(self, row: RowKey, timestamp: int, value: Any) -> None: ...

    def get_versions(self, row: RowKey, max_timestamp: Optional[int] = None): ...

    def delete_version(self, row: RowKey, timestamp: int) -> bool: ...


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transactional unit of execution.

    Create via :meth:`TransactionManager.begin`; not directly.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        start_ts: int,
    ) -> None:
        self._manager = manager
        self.start_ts = start_ts
        self.commit_ts: Optional[int] = None
        self.state = TxnState.ACTIVE
        self.read_set: Set[RowKey] = set()
        self.write_set: Set[RowKey] = set()
        self._writes: Dict[RowKey, Any] = {}  # local cache for own-reads
        self.abort_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def read(self, row: RowKey, default: Any = None, track: bool = True) -> Any:
        """Snapshot-read ``row``; record it in the read set.

        ``track=False`` performs an untracked read — useful to model the
        analytical "skip the commit check" escape hatch of §5.2, and for
        tests; normal application reads must leave it True.
        """
        self._require_active()
        if row in self._writes:
            value = self._writes[row]
            if track:
                self.read_set.add(row)
            return default if value is TOMBSTONE else value
        value = self._manager.reader.read_value(
            row,
            snapshot_ts=self.start_ts,
            own_start_ts=self.start_ts,
            default=default,
        )
        if track:
            self.read_set.add(row)
        return value

    def read_many(self, rows: Iterable[RowKey], default: Any = None) -> Dict[RowKey, Any]:
        """Read several rows in one call (multi-get)."""
        return {row: self.read(row, default=default) for row in rows}

    def scan(self, start: RowKey, end: RowKey) -> Dict[RowKey, Any]:
        """Search-condition read: every visible row in ``[start, end)``.

        §5: "the set of identifiers of the read rows ... is computed
        based on the rows that are actually read by the transaction,
        whether these rows were originally specified by their primary
        keys or by a search condition."  Every row the scan observes —
        including the transaction's own pending writes in range — enters
        the read set, so a later conflicting write to any of them is
        detected at commit.

        Requires a backend with ``scan_range`` (both
        :class:`~repro.mvcc.store.MVCCStore` and
        :class:`~repro.hbase.cluster.HBaseCluster` provide it).
        """
        self._require_active()
        scan_range = getattr(self._manager.store, "scan_range", None)
        if scan_range is None:
            raise TypeError(
                f"{type(self._manager.store).__name__} does not support scans"
            )
        result: Dict[RowKey, Any] = {}
        candidates = set(scan_range(start, end))
        candidates.update(
            row for row in self._writes
            if start <= row < end  # type: ignore[operator]
        )
        for row in sorted(candidates):  # type: ignore[type-var]
            value = self.read(row)
            if value is not None:
                result[row] = value
        return result

    def write(self, row: RowKey, value: Any) -> None:
        """Buffer-and-apply a write at the start timestamp."""
        self._require_active()
        if value is TOMBSTONE:
            raise ValueError("use delete() to remove a row")
        self._manager.store.put(row, self.start_ts, value)
        self._writes[row] = value
        self.write_set.add(row)

    def delete(self, row: RowKey) -> None:
        """Transactionally delete ``row`` (writes a tombstone)."""
        self._require_active()
        self._manager.store.put(row, self.start_ts, TOMBSTONE)
        self._writes[row] = TOMBSTONE
        self.write_set.add(row)

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Request commit from the status oracle.

        Returns the commit timestamp (== start_ts for read-only
        transactions, which need no separate commit point).  Raises
        :class:`ConflictAbort` / :class:`TmaxAbort` on conflict; the
        transaction's writes are already cleaned up when the exception
        propagates.
        """
        self._require_active()
        is_read_only = not self.write_set
        if is_read_only:
            # §5.1: empty read AND write sets -> the oracle does no work
            # and a read-only transaction can never abort.
            request = CommitRequest(self.start_ts)
        else:
            request = CommitRequest(
                self.start_ts,
                write_set=frozenset(self.write_set),
                read_set=frozenset(self.read_set),
            )
        result = self._manager.oracle.commit(request)
        self._manager._retire(self)
        if not result.committed:
            self._cleanup_writes()
            self.state = TxnState.ABORTED
            self.abort_reason = result.reason
            if result.reason == "tmax":
                raise TmaxAbort(self.start_ts, getattr(
                    self._manager.oracle, "tmax", 0))
            raise ConflictAbort(self.start_ts, result.reason, result.conflict_row)
        self.state = TxnState.COMMITTED
        self.commit_ts = (
            result.commit_ts if result.commit_ts is not None else self.start_ts
        )
        return self.commit_ts

    def abort(self, reason: str = "client") -> None:
        """Client-initiated rollback."""
        self._require_active()
        self._cleanup_writes()
        if self.write_set:
            # Tell the oracle so readers learn this txn's versions are dead.
            self._manager.oracle.abort(self.start_ts)
        self._manager._retire(self)
        self.state = TxnState.ABORTED
        self.abort_reason = reason

    def _cleanup_writes(self) -> None:
        for row in self.write_set:
            self._manager.store.delete_version(row, self.start_ts)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise InvalidTransactionState(
                f"transaction {self.start_ts} is {self.state.value}"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def is_read_only(self) -> bool:
        return not self.write_set

    def footprint(self) -> TxnFootprint:
        """Export this transaction for the offline conflict predicates."""
        return TxnFootprint(
            txn_id=self.start_ts,
            start_ts=self.start_ts,
            commit_ts=self.commit_ts,
            read_set=frozenset(self.read_set),
            write_set=frozenset(self.write_set),
        )

    # context-manager sugar: commit on clean exit, abort on exception.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state is not TxnState.ACTIVE:
            return False  # already terminated explicitly
        if exc_type is None:
            self.commit()
            return False
        self.abort(reason=f"exception:{exc_type.__name__}")
        return False  # propagate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(start={self.start_ts}, state={self.state.value}, "
            f"|r|={len(self.read_set)}, |w|={len(self.write_set)})"
        )


class TransactionManager:
    """Factory and shared context for transactions.

    Args:
        oracle: the status oracle deciding commits (SI or WSI).
        store: the storage backend holding versioned data.
        commit_source: where snapshot reads learn commit status.  Defaults
            to a fresh client-side replica of the oracle's commit table
            (the configuration the paper's experiments used).
    """

    def __init__(
        self,
        oracle: StatusOracle,
        store: StorageBackend,
        commit_source: Optional[CommitStatusSource] = None,
    ) -> None:
        self.oracle = oracle
        self.store = store
        if commit_source is None:
            commit_source = ClientCommitView(oracle.commit_table)
        self.commit_source = commit_source
        self.reader = SnapshotReader(store, commit_source)
        self._started = 0
        self._active: Dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        """Start a transaction: one timestamp request, nothing else."""
        start_ts = self.oracle.begin()
        self._started += 1
        txn = Transaction(self, start_ts)
        self._active[start_ts] = txn
        return txn

    def _retire(self, txn: Transaction) -> None:
        self._active.pop(txn.start_ts, None)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc_watermark(self) -> int:
        """Oldest snapshot any active transaction may still read.

        Versions below the newest committed version at this timestamp
        are unreachable by every current and future snapshot.
        """
        if self._active:
            return min(self._active)
        return self.oracle.timestamp_oracle.peek()

    def collect_garbage(self) -> int:
        """Compact old versions unreachable by any active snapshot.

        Keeps, for every row, the newest version at or below the GC
        watermark plus everything newer (HBase major compaction with a
        safe watermark).  Returns the number of versions removed.
        Requires a backend exposing ``scan_rows`` and ``compact`` (the
        plain :class:`~repro.mvcc.store.MVCCStore` does).
        """
        scan_rows = getattr(self.store, "scan_rows", None)
        compact = getattr(self.store, "compact", None)
        if scan_rows is None or compact is None:
            raise TypeError(
                f"{type(self.store).__name__} does not support compaction"
            )
        watermark = self.gc_watermark()
        removed = 0
        for row in list(scan_rows()):
            removed += compact(row, keep_after=watermark)
        return removed

    def run(self, fn, *, retries: int = 10) -> Any:
        """Execute ``fn(txn)`` with automatic retry on conflict aborts.

        The standard OCC client loop: conflicts are expected, so retry
        with a fresh snapshot up to ``retries`` times, then re-raise.
        """
        last: Optional[AbortException] = None
        for _ in range(retries + 1):
            txn = self.begin()
            try:
                result = fn(txn)
                if txn.state is TxnState.ACTIVE:
                    txn.commit()
                return result
            except AbortException as exc:
                last = exc
                continue
        if last is None:
            raise InvariantViolation("retry loop exhausted without an abort")
        raise last

    @property
    def started_count(self) -> int:
        return self._started

    @property
    def isolation_level(self) -> str:
        return self.oracle.level
