"""E12 (extension) — SI vs WSI vs Cahill-SSI on one workload.

§7.1 positions write-snapshot isolation against Cahill et al.'s
serializable SI: both add serializability on top of an SI-era substrate,
both pay unnecessary aborts — SSI via pivot false positives, WSI via
rw-temporal false positives — and the paper leaves the concurrency
comparison "to experimental results".  This benchmark runs the same
contended workload through all three oracles and tabulates commit/abort
behaviour, plus a serializability verdict for each protocol's output
(SI's executions are expected to fail it on contended runs).
"""

import pytest

from repro.bench import format_table, run_interleaved
from repro.core import TransactionManager, make_oracle
from repro.mvcc.store import MVCCStore
from repro.ssi import SerializableSIOracle
from repro.workload import complex_workload


def make_manager(protocol: str) -> TransactionManager:
    if protocol == "ssi":
        oracle = SerializableSIOracle()
    else:
        oracle = make_oracle(protocol)
    return TransactionManager(oracle, MVCCStore())


def run_protocols():
    results = {}
    for protocol in ("si", "wsi", "ssi"):
        manager = make_manager(protocol)
        wl = complex_workload(distribution="zipfian", keyspace=5000, seed=51)
        outcome = run_interleaved(
            manager, wl.batch(3000), concurrency=8, seed=52
        )
        results[protocol] = (manager, outcome)
    return results


@pytest.mark.figure("three-protocols")
def test_e12_si_wsi_ssi_comparison(benchmark, print_header):
    results = benchmark.pedantic(run_protocols, rounds=1, iterations=1)
    print_header("E12 — SI vs WSI vs SSI: same workload, three conflict rules")
    rows = []
    for protocol, (manager, outcome) in results.items():
        serializable = "yes" if protocol in ("wsi", "ssi") else "NO (by design)"
        rows.append(
            (
                protocol.upper(),
                outcome.committed,
                outcome.aborted,
                f"{100 * outcome.abort_rate:.1f}%",
                ", ".join(
                    f"{k}:{v}" for k, v in sorted(outcome.abort_reasons.items())
                ) or "-",
                serializable,
            )
        )
    print(
        format_table(
            ["protocol", "committed", "aborted", "abort rate", "reasons", "serializable"],
            rows,
            title="complex workload, zipfian over 5000 rows, 8 concurrent clients",
        )
    )

    si = results["si"][1]
    wsi = results["wsi"][1]
    ssi = results["ssi"][1]
    # Everyone commits the majority of transactions (zipf-0.99 over a
    # small keyspace is a brutally hot workload, so the bar is moderate).
    for outcome in (si, wsi, ssi):
        assert outcome.committed > 0.5 * outcome.total
    # The serializable protocols pay for it: both abort at least as much
    # as plain SI on this contended workload (within noise).
    assert wsi.abort_rate >= si.abort_rate - 0.02
    assert ssi.abort_rate >= si.abort_rate - 0.02
    # SSI's abort reasons include pivot aborts on top of ww-conflicts —
    # the false-positive tax §7.1 describes.
    assert any(reason.startswith("ssi-pivot") for reason in ssi.abort_reasons)
    assert results["ssi"][0].oracle.pivot_aborts > 0
