"""E16 (ablation) — the §4.1 read-only exemption, removed.

§1 motivates the read-only optimization: "in a naive implementation of
read-write conflict detection, read-only transactions could be aborted,
which would greatly reduce the level of concurrency that the system
could provide."  §4.1 then adds condition 3 (neither txn is read-only)
and §5.1 implements it by having read-only clients submit empty sets.

This ablation runs the same contended mixed workload twice against the
WSI oracle: once with the optimization (empty sets for read-only
transactions — the normal client) and once naively (read-only clients
submit their read sets like everyone else), and measures how many
read-only transactions the naive scheme needlessly kills.
"""

import random

import pytest

from repro.bench import format_table
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.workload import mixed_workload

NUM_TXNS = 4000
CONCURRENCY = 16
KEYSPACE = 2_000


def run(naive: bool):
    # The oracle itself now enforces §4.1 condition 3 (an empty write set
    # never aborts), so the naive scheme needs the explicit ablation
    # switch in addition to clients submitting their read sets.
    oracle = make_oracle("wsi", naive_read_only=naive)
    wl = mixed_workload(distribution="zipfian", keyspace=KEYSPACE, seed=111)
    rng = random.Random(112)
    open_txns = []
    stats = {
        "ro_total": 0, "ro_aborted": 0,
        "write_total": 0, "write_aborted": 0,
    }
    for spec in wl.stream(NUM_TXNS):
        if len(open_txns) >= CONCURRENCY:
            start_ts, wset, rset, read_only = open_txns.pop(
                rng.randrange(len(open_txns))
            )
            if read_only and not naive:
                request = CommitRequest(start_ts)  # §5.1 client behaviour
            else:
                request = CommitRequest(start_ts, write_set=wset, read_set=rset)
            result = oracle.commit(request)
            kind = "ro" if read_only else "write"
            stats[f"{kind}_total"] += 1
            if not result.committed:
                stats[f"{kind}_aborted"] += 1
        open_txns.append(
            (
                oracle.begin(),
                frozenset(spec.write_rows),
                frozenset(spec.read_rows),
                spec.read_only,
            )
        )
    return stats


@pytest.mark.figure("readonly-naive")
def test_e16_naive_read_only_checking(benchmark, print_header):
    optimized, naive = benchmark.pedantic(
        lambda: (run(naive=False), run(naive=True)), rounds=1, iterations=1
    )
    print_header("E16 — §4.1 ablation: read-only exemption on vs off (naive)")

    def rate(stats, kind):
        total = stats[f"{kind}_total"]
        return stats[f"{kind}_aborted"] / total if total else 0.0

    print(
        format_table(
            ["scheme", "read-only aborts", "ro abort rate", "write-txn abort rate"],
            [
                (
                    "optimized (§5.1 empty sets)",
                    optimized["ro_aborted"],
                    f"{100 * rate(optimized, 'ro'):.1f}%",
                    f"{100 * rate(optimized, 'write'):.1f}%",
                ),
                (
                    "naive (read sets submitted)",
                    naive["ro_aborted"],
                    f"{100 * rate(naive, 'ro'):.1f}%",
                    f"{100 * rate(naive, 'write'):.1f}%",
                ),
            ],
            title=f"mixed zipfian workload, {KEYSPACE} rows, "
            f"{CONCURRENCY} concurrent clients",
        )
    )

    # The optimized scheme never aborts a read-only transaction...
    assert optimized["ro_aborted"] == 0
    # ...the naive scheme kills a substantial share of them — the
    # "greatly reduce the level of concurrency" of §1.
    assert rate(naive, "ro") > 0.10
    # Write-transaction abort behaviour is unchanged by the optimization
    # (read-only transactions never update lastCommit either way).
    assert abs(rate(naive, "write") - rate(optimized, "write")) < 0.05
