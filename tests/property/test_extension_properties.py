"""Property tests for the extension modules: analytics, coordination,
partitioned oracle."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.analytics import RangeReadSet, RowRange
from repro.coord.zookeeper import LeaderElection, ZooKeeper


# ----------------------------------------------------------------------
# RangeReadSet: model-based against a plain set of rows
# ----------------------------------------------------------------------
@given(
    ranges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=1, max_value=20),
        ),
        max_size=25,
    )
)
@settings(max_examples=300, deadline=None)
def test_range_read_set_matches_row_set_model(ranges):
    rs = RangeReadSet()
    model = set()
    for start, width in ranges:
        rs.add(RowRange(start, start + width))
        model.update(range(start, start + width))
    # membership agrees with the model on every relevant row
    for row in range(0, 125):
        assert rs.contains(row) == (row in model)
    # coverage count agrees
    assert rs.covered_rows == len(model)
    # ranges are disjoint, sorted, and non-adjacent (fully coalesced)
    spans = rs.ranges()
    for left, right in zip(spans, spans[1:]):
        assert left.end < right.start


@given(rows=st.lists(st.integers(min_value=0, max_value=500), max_size=80))
@settings(max_examples=200, deadline=None)
def test_range_read_set_add_row_idempotent_union(rows):
    rs = RangeReadSet()
    for row in rows:
        rs.add_row(row)
        rs.add_row(row)  # duplicates change nothing
    assert rs.covered_rows == len(set(rows))


# ----------------------------------------------------------------------
# Leader election: safety under arbitrary crash orders
# ----------------------------------------------------------------------
@given(
    crash_order=st.permutations(list(range(5))),
    survivors=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=150, deadline=None)
def test_election_safety_under_random_crashes(crash_order, survivors):
    zk = ZooKeeper()
    sessions = [zk.connect() for _ in range(5)]
    elections = [LeaderElection(s) for s in sessions]
    for victim in crash_order[: 5 - survivors]:
        sessions[victim].close()
        alive = [e for s, e in zip(sessions, elections) if s.alive]
        leaders = [e for e in alive if e.is_leader]
        if alive:
            # safety: exactly one leader among the living
            assert len(leaders) == 1
            # and it is the longest-waiting (lowest sequence) candidate
            assert leaders[0].my_node == min(e.my_node for e in alive)


# ----------------------------------------------------------------------
# Partitioned oracle: decisions independent of partition count
# ----------------------------------------------------------------------
@given(
    script=st.lists(
        st.tuples(
            st.sets(st.integers(min_value=0, max_value=12), max_size=3),  # writes
            st.sets(st.integers(min_value=0, max_value=12), max_size=3),  # reads
            st.integers(min_value=0, max_value=2),  # commit gap
        ),
        min_size=1,
        max_size=12,
    ),
    partitions=st.sampled_from([2, 3, 7]),
    level=st.sampled_from(["si", "wsi"]),
)
@settings(max_examples=150, deadline=None)
def test_partitioned_decisions_equal_monolith(script, partitions, level):
    from repro.core.partitioned import PartitionedOracle
    from repro.core.status_oracle import CommitRequest, make_oracle

    mono = make_oracle(level)
    part = PartitionedOracle(level=level, num_partitions=partitions)
    pending = []
    for step, (writes, reads, gap) in enumerate(script):
        pending.append(
            [mono.begin(), part.begin(), frozenset(writes), frozenset(reads),
             step + gap]
        )
        for entry in list(pending):
            if entry[4] <= step:
                pending.remove(entry)
                m_ts, p_ts, w, r, _ = entry
                m_res = mono.commit(CommitRequest(m_ts, write_set=w, read_set=r))
                p_res = part.commit(CommitRequest(p_ts, write_set=w, read_set=r))
                assert m_res.committed == p_res.committed
    for m_ts, p_ts, w, r, _ in pending:
        m_res = mono.commit(CommitRequest(m_ts, write_set=w, read_set=r))
        p_res = part.commit(CommitRequest(p_ts, write_set=w, read_set=r))
        assert m_res.committed == p_res.committed
