"""Serializable snapshot isolation (Cahill et al. [8]), oracle-adapted.

The paper's related work (§7.1) discusses Cahill, Röhm and Fekete's
*Serializable Isolation for Snapshot Databases* (TODS 2009): keep
snapshot isolation's write-write aborts, additionally track read-write
**antidependencies** (``rw``-edges: reader → overwriting writer) between
concurrent transactions, and abort when a transaction becomes a *pivot*
— it has both an incoming and an outgoing rw-edge — since every
SI anomaly contains such a structure.  The check is conservative:
"It, however, allows for false positives, which further lowers the
concurrency level due to unnecessary aborts."

This module adapts the algorithm to the paper's centralized, lock-free
setting so it can be compared head-to-head with SI and WSI: instead of
SIREAD locks, the oracle retains the (read set, write set, interval) of
recently committed transactions and evaluates rw-edges at commit time.

At commit of ``T`` against each *concurrent* committed ``C``:

* ``C.read_set ∩ T.write_set`` ≠ ∅  →  edge ``C → T`` (T has in-conflict,
  C gains out-conflict);
* ``T.read_set ∩ C.write_set`` ≠ ∅  →  edge ``T → C`` (T has
  out-conflict, C gains in-conflict).

``T`` aborts if committing it would give *any* transaction — itself or
an already-committed neighbour — both flags (a committed transaction
cannot be aborted retroactively, so the pivot must be prevented by
aborting ``T``).

The retained-footprint window is pruned below the oldest active start
timestamp, mirroring how SIREAD locks are released once no concurrent
transaction remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.status_oracle import (
    CommitRequest,
    CommitResult,
    StatusOracle,
)

RowKey = Hashable


@dataclass
class _CommittedTxn:
    """Footprint of a committed transaction retained for edge detection."""

    start_ts: int
    commit_ts: int
    read_set: FrozenSet[RowKey]
    write_set: FrozenSet[RowKey]
    in_conflict: bool = False   # some concurrent txn has an rw-edge INTO it
    out_conflict: bool = False  # it has an rw-edge into a concurrent txn


class SerializableSIOracle(StatusOracle):
    """SI + commit-time dangerous-structure detection (Cahill-style).

    Keeps Algorithm 1's write-write check (SSI retains SI's first-
    committer-wins rule) and layers the pivot check on top.
    """

    level = "ssi"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._active_starts: Set[int] = set()
        self._recent: List[_CommittedTxn] = []
        self.pivot_aborts = 0

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def begin(self) -> int:
        ts = super().begin()
        self._active_starts.add(ts)
        return ts

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        return request.write_set  # the SI ww-check is kept verbatim

    def commit(self, request: CommitRequest) -> CommitResult:
        self._active_starts.discard(request.start_ts)

        # Read-only fast path: a read-only transaction can participate in
        # a dangerous structure only as a pivot's *source*; Cahill's
        # optimization (and ours): snapshot reads make it safe to commit
        # read-only transactions that submit empty sets.
        if request.is_read_only and not request.read_set:
            return super().commit(request)

        # Phase 1: SI's write-write check (inherited machinery).
        conflict = self._check(request)
        if conflict is not None:
            reason, row = conflict
            self.stats.aborts += 1
            self.stats.conflict_aborts += 1
            self.commit_table.record_abort(request.start_ts)
            self._log("abort", (request.start_ts,))
            return CommitResult(
                False, request.start_ts, reason=reason, conflict_row=row
            )

        # Phase 2: dangerous-structure (pivot) check against concurrent
        # committed transactions.
        in_edge, out_edge, neighbours = self._edges(request)
        if in_edge and out_edge:
            self.pivot_aborts += 1
            return self._abort_pivot(request, "ssi-pivot-self")
        for neighbour, gains_in, gains_out in neighbours:
            if (neighbour.in_conflict or gains_in) and (
                neighbour.out_conflict or gains_out
            ):
                self.pivot_aborts += 1
                return self._abort_pivot(request, "ssi-pivot-neighbour")

        # Safe: commit, apply edge flags, retain the footprint.
        commit_ts = self._tso.next()
        rows = self.rows_to_update(request)
        self._install(rows, commit_ts)
        self.stats.rows_updated += len(rows)
        self.commit_table.record_commit(request.start_ts, commit_ts)
        self.stats.commits += 1
        self._log("commit", (request.start_ts, commit_ts, tuple(rows)))
        for neighbour, gains_in, gains_out in neighbours:
            neighbour.in_conflict = neighbour.in_conflict or gains_in
            neighbour.out_conflict = neighbour.out_conflict or gains_out
        self._recent.append(
            _CommittedTxn(
                request.start_ts,
                commit_ts,
                request.read_set,
                request.write_set,
                in_conflict=in_edge,
                out_conflict=out_edge,
            )
        )
        self._prune()
        return CommitResult(True, request.start_ts, commit_ts=commit_ts)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _edges(
        self, request: CommitRequest
    ) -> Tuple[bool, bool, List[Tuple[_CommittedTxn, bool, bool]]]:
        """rw-edges between the committing txn and concurrent committed
        txns.  Returns (T has in-edge, T has out-edge, per-neighbour
        (txn, neighbour gains in, neighbour gains out))."""
        t_in = t_out = False
        neighbours: List[Tuple[_CommittedTxn, bool, bool]] = []
        for committed in self._recent:
            # concurrency: C committed after T started (T could not see
            # C's writes; C could not have seen T's).
            if committed.commit_ts <= request.start_ts:
                continue
            c_gains_in = c_gains_out = False
            if committed.read_set & request.write_set:
                t_in = True          # edge C -> T
                c_gains_out = True
            if request.read_set & committed.write_set:
                t_out = True         # edge T -> C
                c_gains_in = True
            if c_gains_in or c_gains_out:
                neighbours.append((committed, c_gains_in, c_gains_out))
        return t_in, t_out, neighbours

    def _abort_pivot(self, request: CommitRequest, reason: str) -> CommitResult:
        self.stats.aborts += 1
        self.stats.conflict_aborts += 1
        self.commit_table.record_abort(request.start_ts)
        self._log("abort", (request.start_ts,))
        return CommitResult(False, request.start_ts, reason=reason)

    def _prune(self) -> None:
        """Drop footprints no active transaction can be concurrent with."""
        if not self._active_starts:
            horizon: Optional[int] = None
        else:
            horizon = min(self._active_starts)
        if horizon is None:
            self._recent.clear()
            return
        self._recent = [c for c in self._recent if c.commit_ts > horizon]

    @property
    def retained_footprints(self) -> int:
        return len(self._recent)
